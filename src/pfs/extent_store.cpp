#include "pfs/extent_store.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace mha::pfs {

void ExtentStore::write(common::Offset offset, const std::vector<std::uint8_t>& data) {
  write(offset, data.data(), data.size());
}

void ExtentStore::write(common::Offset offset, const std::uint8_t* data,
                        common::ByteCount size) {
  if (size == 0) return;
  const common::Offset end = offset + size;

  // Append fast paths: sequential writers (the replayer, region placement,
  // migration copies) land at or past the store's end almost every time, so
  // resolve against the last extent without the general merge walk.
  if (!extents_.empty()) {
    auto& [last_start, last_bytes] = *extents_.rbegin();
    const common::Offset last_end = last_start + last_bytes.size();
    if (offset > last_end) {  // disjoint new tail extent
      extents_.emplace_hint(extents_.end(), offset,
                            std::vector<std::uint8_t>(data, data + size));
      return;
    }
    if (offset >= last_start && offset <= last_end) {
      // Overwrite the overlap in place, grow the run with the remainder.
      const common::ByteCount overlap =
          std::min<common::ByteCount>(size, last_end - offset);
      std::memcpy(last_bytes.data() + (offset - last_start), data, overlap);
      if (overlap < size) {
        last_bytes.insert(last_bytes.end(), data + overlap, data + size);
      }
      return;
    }
  } else {
    extents_.emplace(offset, std::vector<std::uint8_t>(data, data + size));
    return;
  }

  // Fast path: the write lands entirely inside one existing extent —
  // overwrite in place.  This keeps repeated updates to a large file O(size)
  // instead of O(extent) (the slow path rebuilds the merged run).
  {
    auto it = extents_.upper_bound(offset);
    if (it != extents_.begin()) {
      auto prev = std::prev(it);
      if (prev->first <= offset && prev->first + prev->second.size() >= end) {
        std::memcpy(prev->second.data() + (offset - prev->first), data, size);
        return;
      }
    }
  }

  // Collect the new run, absorbing any overlapping or adjacent existing
  // extents so the map invariant (disjoint, non-adjacent) is preserved.
  common::Offset new_start = offset;
  std::vector<std::uint8_t> merged(data, data + size);

  // First candidate: the extent starting at or before `offset`.
  auto it = extents_.upper_bound(offset);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    const common::Offset prev_end = prev->first + prev->second.size();
    if (prev_end >= offset) {  // overlaps or touches on the left
      const common::ByteCount head = offset - prev->first;
      std::vector<std::uint8_t> combined(prev->second.begin(),
                                         prev->second.begin() + static_cast<long>(head));
      combined.insert(combined.end(), merged.begin(), merged.end());
      if (prev_end > end) {  // old extent sticks out on the right
        combined.insert(combined.end(),
                        prev->second.begin() + static_cast<long>(end - prev->first),
                        prev->second.end());
      }
      new_start = prev->first;
      merged = std::move(combined);
      it = extents_.erase(prev);
    }
  }
  // Absorb extents that start inside or immediately after the merged run.
  while (it != extents_.end() && it->first <= new_start + merged.size()) {
    const common::Offset it_end = it->first + it->second.size();
    if (it_end > new_start + merged.size()) {
      const common::ByteCount keep_from = new_start + merged.size() - it->first;
      merged.insert(merged.end(), it->second.begin() + static_cast<long>(keep_from),
                    it->second.end());
    }
    it = extents_.erase(it);
  }
  extents_.emplace(new_start, std::move(merged));
}

std::vector<std::uint8_t> ExtentStore::read(common::Offset offset,
                                            common::ByteCount size) const {
  std::vector<std::uint8_t> out(size, 0);
  read(offset, out.data(), size);
  return out;
}

void ExtentStore::read(common::Offset offset, std::uint8_t* out,
                       common::ByteCount size) const {
  if (size == 0) return;
  const common::Offset end = offset + size;

  auto it = extents_.upper_bound(offset);
  if (it != extents_.begin()) {
    --it;
    // Fast path: the whole range lives inside one extent — a single memcpy,
    // and no zero-fill pass (there are no holes to clear).
    if (it->first <= offset && it->first + it->second.size() >= end) {
      std::memcpy(out, it->second.data() + (offset - it->first), size);
      return;
    }
  }
  std::memset(out, 0, size);
  for (; it != extents_.end() && it->first < end; ++it) {
    const common::Offset ext_start = it->first;
    const common::Offset ext_end = ext_start + it->second.size();
    if (ext_end <= offset) continue;
    const common::Offset copy_start = std::max(offset, ext_start);
    const common::Offset copy_end = std::min(end, ext_end);
    std::memcpy(out + (copy_start - offset),
                it->second.data() + (copy_start - ext_start), copy_end - copy_start);
  }
}

bool ExtentStore::covered(common::Offset offset, common::ByteCount size) const {
  if (size == 0) return true;
  common::Offset pos = offset;
  const common::Offset end = offset + size;
  auto it = extents_.upper_bound(pos);
  if (it != extents_.begin()) --it;
  for (; it != extents_.end() && pos < end; ++it) {
    const common::Offset ext_start = it->first;
    const common::Offset ext_end = ext_start + it->second.size();
    if (ext_start > pos) return false;  // hole before this extent
    if (ext_end > pos) pos = ext_end;
  }
  return pos >= end;
}

common::Offset ExtentStore::end_offset() const {
  if (extents_.empty()) return 0;
  const auto& last = *extents_.rbegin();
  return last.first + last.second.size();
}

common::ByteCount ExtentStore::stored_bytes() const {
  common::ByteCount total = 0;
  for (const auto& [off, bytes] : extents_) total += bytes.size();
  return total;
}

}  // namespace mha::pfs
