#include "pfs/extent_store.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>

#include "common/crc32.hpp"

namespace mha::pfs {

void ExtentStore::write(common::Offset offset, const std::vector<std::uint8_t>& data) {
  write(offset, data.data(), data.size());
}

void ExtentStore::write(common::Offset offset, const std::uint8_t* data,
                        common::ByteCount size) {
  if (size == 0) return;
  raw_write(offset, data, size);
  rechecksum(offset, size);
}

void ExtentStore::write_batch(std::span<const IoSlice> slices) {
  // Content plane first, in list order: overlap between slices resolves the
  // same way the equivalent write() sequence would.
  batch_chunks_.clear();
  for (const IoSlice& s : slices) {
    if (s.size == 0) continue;
    raw_write(s.offset, s.data, s.size);
    batch_chunks_.emplace_back(s.offset / kChecksumChunk,
                               (s.offset + s.size - 1) / kChecksumChunk);
  }
  if (batch_chunks_.empty()) return;
  // Checksum plane once per touched chunk: sort the per-slice chunk ranges,
  // merge overlapping/adjacent ones, rechecksum each merged run.  A strict
  // gap between runs is a chunk no slice touched — it must keep its old CRC.
  std::sort(batch_chunks_.begin(), batch_chunks_.end());
  std::size_t run_first = batch_chunks_.front().first;
  std::size_t run_last = batch_chunks_.front().second;
  const auto flush = [&] {
    rechecksum(static_cast<common::Offset>(run_first) * kChecksumChunk,
               static_cast<common::ByteCount>(run_last - run_first + 1) * kChecksumChunk);
  };
  for (std::size_t i = 1; i < batch_chunks_.size(); ++i) {
    const auto& [first, last] = batch_chunks_[i];
    if (first <= run_last + 1) {
      run_last = std::max(run_last, last);
    } else {
      flush();
      run_first = first;
      run_last = last;
    }
  }
  flush();
}

void ExtentStore::raw_write(common::Offset offset, const std::uint8_t* data,
                            common::ByteCount size) {
  if (size == 0) return;
  const common::Offset end = offset + size;

  // Append fast paths: sequential writers (the replayer, region placement,
  // migration copies) land at or past the store's end almost every time, so
  // resolve against the last extent without the general merge walk.
  if (!extents_.empty()) {
    auto& [last_start, last_bytes] = *extents_.rbegin();
    const common::Offset last_end = last_start + last_bytes.size();
    if (offset > last_end) {  // disjoint new tail extent
      extents_.emplace_hint(extents_.end(), offset,
                            std::vector<std::uint8_t>(data, data + size));
      return;
    }
    if (offset >= last_start && offset <= last_end) {
      // Overwrite the overlap in place, grow the run with the remainder.
      const common::ByteCount overlap =
          std::min<common::ByteCount>(size, last_end - offset);
      std::memcpy(last_bytes.data() + (offset - last_start), data, overlap);
      if (overlap < size) {
        last_bytes.insert(last_bytes.end(), data + overlap, data + size);
      }
      return;
    }
  } else {
    extents_.emplace(offset, std::vector<std::uint8_t>(data, data + size));
    return;
  }

  // Fast path: the write lands entirely inside one existing extent —
  // overwrite in place.  This keeps repeated updates to a large file O(size)
  // instead of O(extent) (the slow path rebuilds the merged run).
  {
    auto it = extents_.upper_bound(offset);
    if (it != extents_.begin()) {
      auto prev = std::prev(it);
      if (prev->first <= offset && prev->first + prev->second.size() >= end) {
        std::memcpy(prev->second.data() + (offset - prev->first), data, size);
        return;
      }
    }
  }

  // Collect the new run, absorbing any overlapping or adjacent existing
  // extents so the map invariant (disjoint, non-adjacent) is preserved.
  common::Offset new_start = offset;
  std::vector<std::uint8_t> merged(data, data + size);

  // First candidate: the extent starting at or before `offset`.
  auto it = extents_.upper_bound(offset);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    const common::Offset prev_end = prev->first + prev->second.size();
    if (prev_end >= offset) {  // overlaps or touches on the left
      const common::ByteCount head = offset - prev->first;
      std::vector<std::uint8_t> combined(prev->second.begin(),
                                         prev->second.begin() + static_cast<long>(head));
      combined.insert(combined.end(), merged.begin(), merged.end());
      if (prev_end > end) {  // old extent sticks out on the right
        combined.insert(combined.end(),
                        prev->second.begin() + static_cast<long>(end - prev->first),
                        prev->second.end());
      }
      new_start = prev->first;
      merged = std::move(combined);
      it = extents_.erase(prev);
    }
  }
  // Absorb extents that start inside or immediately after the merged run.
  while (it != extents_.end() && it->first <= new_start + merged.size()) {
    const common::Offset it_end = it->first + it->second.size();
    if (it_end > new_start + merged.size()) {
      const common::ByteCount keep_from = new_start + merged.size() - it->first;
      merged.insert(merged.end(), it->second.begin() + static_cast<long>(keep_from),
                    it->second.end());
    }
    it = extents_.erase(it);
  }
  extents_.emplace(new_start, std::move(merged));
}

std::vector<std::uint8_t> ExtentStore::read(common::Offset offset,
                                            common::ByteCount size) const {
  std::vector<std::uint8_t> out(size, 0);
  read(offset, out.data(), size);
  return out;
}

void ExtentStore::read(common::Offset offset, std::uint8_t* out,
                       common::ByteCount size) const {
  if (size == 0) return;
  const common::Offset end = offset + size;

  auto it = extents_.upper_bound(offset);
  if (it != extents_.begin()) {
    --it;
    // Fast path: the whole range lives inside one extent — a single memcpy,
    // and no zero-fill pass (there are no holes to clear).
    if (it->first <= offset && it->first + it->second.size() >= end) {
      std::memcpy(out, it->second.data() + (offset - it->first), size);
      return;
    }
  }
  std::memset(out, 0, size);
  for (; it != extents_.end() && it->first < end; ++it) {
    const common::Offset ext_start = it->first;
    const common::Offset ext_end = ext_start + it->second.size();
    if (ext_end <= offset) continue;
    const common::Offset copy_start = std::max(offset, ext_start);
    const common::Offset copy_end = std::min(end, ext_end);
    std::memcpy(out + (copy_start - offset),
                it->second.data() + (copy_start - ext_start), copy_end - copy_start);
  }
}

bool ExtentStore::covered(common::Offset offset, common::ByteCount size) const {
  if (size == 0) return true;
  common::Offset pos = offset;
  const common::Offset end = offset + size;
  auto it = extents_.upper_bound(pos);
  if (it != extents_.begin()) --it;
  for (; it != extents_.end() && pos < end; ++it) {
    const common::Offset ext_start = it->first;
    const common::Offset ext_end = ext_start + it->second.size();
    if (ext_start > pos) return false;  // hole before this extent
    if (ext_end > pos) pos = ext_end;
  }
  return pos >= end;
}

common::Offset ExtentStore::end_offset() const {
  if (extents_.empty()) return 0;
  const auto& last = *extents_.rbegin();
  return last.first + last.second.size();
}

common::ByteCount ExtentStore::stored_bytes() const {
  common::ByteCount total = 0;
  for (const auto& [off, bytes] : extents_) total += bytes.size();
  return total;
}

common::Result<common::Offset> ExtentStore::nth_stored_byte(common::ByteCount n) const {
  for (const auto& [off, bytes] : extents_) {
    if (n < bytes.size()) return off + n;
    n -= bytes.size();
  }
  return common::Status::out_of_range("fewer stored bytes than requested index");
}

// --- integrity layer --------------------------------------------------------

void ExtentStore::ensure_chunks(std::size_t count) {
  if (chunk_crcs_.size() < count) {
    chunk_crcs_.resize(count, 0);
    chunk_valid_.resize(count, 0);
  }
  if (scratch_.size() < kChecksumChunk) scratch_.resize(kChecksumChunk);
}

std::uint32_t ExtentStore::chunk_crc(std::size_t c) const {
  if (scratch_.size() < kChecksumChunk) scratch_.resize(kChecksumChunk);
  read(static_cast<common::Offset>(c) * kChecksumChunk, scratch_.data(), kChecksumChunk);
  return common::crc32(scratch_.data(), kChecksumChunk);
}

void ExtentStore::rechecksum(common::Offset offset, common::ByteCount size) {
  if (size == 0) return;
  const std::size_t first = offset / kChecksumChunk;
  const std::size_t last = (offset + size - 1) / kChecksumChunk;
  ensure_chunks(last + 1);
  for (std::size_t c = first; c <= last; ++c) {
    chunk_crcs_[c] = chunk_crc(c);
    chunk_valid_[c] = 1;
  }
}

bool ExtentStore::check_chunk(std::size_t c, ChunkFault& fault) const {
  const bool valid = c < chunk_valid_.size() && chunk_valid_[c] != 0;
  const common::Offset start = static_cast<common::Offset>(c) * kChecksumChunk;
  if (!valid) {
    // No checksum on record: consistent only if the chunk holds no data.
    auto it = extents_.upper_bound(start);
    bool has_data = false;
    if (it != extents_.begin()) {
      auto prev = std::prev(it);
      has_data = prev->first + prev->second.size() > start;
    }
    if (!has_data && it != extents_.end()) has_data = it->first < start + kChecksumChunk;
    if (!has_data) return true;
    fault = ChunkFault{start, kChecksumChunk, 0, chunk_crc(c), /*orphan=*/true};
    return false;
  }
  const std::uint32_t actual = chunk_crc(c);
  if (actual == chunk_crcs_[c]) return true;
  fault = ChunkFault{start, kChecksumChunk, chunk_crcs_[c], actual, /*orphan=*/false};
  return false;
}

namespace {

common::Status fault_status(const ExtentStore::ChunkFault& fault) {
  char msg[128];
  if (fault.orphan) {
    std::snprintf(msg, sizeof(msg),
                  "unchecksummed data in chunk @%llu (misdirected write?), crc %08x",
                  static_cast<unsigned long long>(fault.offset), fault.actual_crc);
  } else {
    std::snprintf(msg, sizeof(msg),
                  "chunk @%llu: stored crc %08x, computed %08x",
                  static_cast<unsigned long long>(fault.offset), fault.expected_crc,
                  fault.actual_crc);
  }
  return common::Status::corruption(msg);
}

}  // namespace

common::Status ExtentStore::verify_range(common::Offset offset,
                                         common::ByteCount size) const {
  if (size == 0) return common::Status::ok();
  const std::size_t first = offset / kChecksumChunk;
  const std::size_t last = (offset + size - 1) / kChecksumChunk;
  for (std::size_t c = first; c <= last; ++c) {
    ChunkFault fault;
    if (!check_chunk(c, fault)) return fault_status(fault);
  }
  return common::Status::ok();
}

common::Status ExtentStore::verified_read(common::Offset offset, std::uint8_t* out,
                                          common::ByteCount size) const {
  MHA_RETURN_IF_ERROR(verify_range(offset, size));
  read(offset, out, size);
  return common::Status::ok();
}

std::size_t ExtentStore::verify_chunks(
    const std::function<void(const ChunkFault&)>& sink) const {
  // The scan domain is every chunk that could be inconsistent: those holding
  // extent data and those carrying a checksum (a torn write can checksum
  // past the data it actually persisted).
  const common::Offset end = end_offset();
  std::size_t chunks = end == 0 ? 0 : (end + kChecksumChunk - 1) / kChecksumChunk;
  chunks = std::max(chunks, chunk_valid_.size());
  std::size_t faulty = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    ChunkFault fault;
    if (!check_chunk(c, fault)) {
      ++faulty;
      if (sink) sink(fault);
    }
  }
  return faulty;
}

bool ExtentStore::corrupt_flip(common::Offset offset, std::uint8_t mask) {
  auto it = extents_.upper_bound(offset);
  if (it == extents_.begin()) return false;
  --it;
  if (offset < it->first || offset >= it->first + it->second.size()) return false;
  it->second[offset - it->first] ^= mask;
  return true;
}

void ExtentStore::write_torn(common::Offset offset, const std::uint8_t* data,
                             common::ByteCount size, common::ByteCount prefix) {
  if (size == 0) return;
  prefix = std::min(prefix, size);
  // Compute the as-if-complete checksums against the pre-write content
  // overlaid with the *full* payload — exactly what the server would have
  // recorded had the write finished — then persist only the prefix.
  const std::size_t first = offset / kChecksumChunk;
  const std::size_t last = (offset + size - 1) / kChecksumChunk;
  std::vector<std::uint32_t> as_if(last - first + 1, 0);
  if (scratch_.size() < kChecksumChunk) scratch_.resize(kChecksumChunk);
  for (std::size_t c = first; c <= last; ++c) {
    const common::Offset chunk_start = static_cast<common::Offset>(c) * kChecksumChunk;
    read(chunk_start, scratch_.data(), kChecksumChunk);
    const common::Offset lo = std::max(chunk_start, offset);
    const common::Offset hi = std::min(chunk_start + kChecksumChunk, offset + size);
    std::memcpy(scratch_.data() + (lo - chunk_start), data + (lo - offset), hi - lo);
    as_if[c - first] = common::crc32(scratch_.data(), kChecksumChunk);
  }
  if (prefix > 0) raw_write(offset, data, prefix);
  ensure_chunks(last + 1);
  for (std::size_t c = first; c <= last; ++c) {
    chunk_crcs_[c] = as_if[c - first];
    chunk_valid_[c] = 1;
  }
}

void ExtentStore::write_unchecked(common::Offset offset, const std::uint8_t* data,
                                  common::ByteCount size) {
  raw_write(offset, data, size);
}

}  // namespace mha::pfs
