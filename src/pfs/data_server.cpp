#include "pfs/data_server.hpp"

namespace mha::pfs {

common::Seconds DataServer::write(common::FileId file, common::Offset physical_offset,
                                  const std::uint8_t* data, common::ByteCount size,
                                  common::Seconds arrival) {
  store(file, physical_offset, data, size);
  return sim_.submit(common::OpType::kWrite, size, arrival);
}

common::Seconds DataServer::read(common::FileId file, common::Offset physical_offset,
                                 std::uint8_t* out, common::ByteCount size,
                                 common::Seconds arrival) {
  load(file, physical_offset, out, size);
  return sim_.submit(common::OpType::kRead, size, arrival);
}

void DataServer::store(common::FileId file, common::Offset physical_offset,
                       const std::uint8_t* data, common::ByteCount size) {
  if (store_data_) stores_[file].write(physical_offset, data, size);
}

void DataServer::store_batch(common::FileId file,
                             std::span<const ExtentStore::IoSlice> slices) {
  if (store_data_ && !slices.empty()) stores_[file].write_batch(slices);
}

void DataServer::load(common::FileId file, common::Offset physical_offset, std::uint8_t* out,
                      common::ByteCount size) const {
  auto it = stores_.find(file);
  if (it != stores_.end()) {
    it->second.read(physical_offset, out, size);
  } else if (size > 0) {
    std::fill(out, out + size, 0);
  }
}

void DataServer::store_faulted(common::FileId file, common::Offset physical_offset,
                               const std::uint8_t* data, common::ByteCount size,
                               const sim::WriteFault& fault) {
  if (!store_data_) return;
  ExtentStore& s = stores_[file];
  switch (fault.kind) {
    case sim::WriteFault::Kind::kNone:
      s.write(physical_offset, data, size);
      break;
    case sim::WriteFault::Kind::kBitRot:
      // The write completes (checksums consistent) and the medium rots a
      // byte afterwards, leaving the checksum stale.
      s.write(physical_offset, data, size);
      s.corrupt_flip(fault.bit_offset, fault.bit_mask);
      break;
    case sim::WriteFault::Kind::kTornWrite:
      s.write_torn(physical_offset, data, size, fault.torn_prefix);
      break;
    case sim::WriteFault::Kind::kMisdirectedWrite:
      // The payload lands at the wrong offset with no checksum update; the
      // intended range keeps its old (now stale but internally consistent)
      // bytes — only end-to-end verification can see that.
      s.write_unchecked(fault.misdirect_to, data, size);
      break;
  }
}

common::Status DataServer::load_verified(common::FileId file, common::Offset physical_offset,
                                         std::uint8_t* out, common::ByteCount size) const {
  auto it = stores_.find(file);
  if (it == stores_.end()) {
    if (size > 0) std::fill(out, out + size, 0);
    return common::Status::ok();
  }
  return it->second.verified_read(physical_offset, out, size);
}

common::Status DataServer::verify_range(common::FileId file, common::Offset physical_offset,
                                        common::ByteCount size) const {
  auto it = stores_.find(file);
  if (it == stores_.end()) return common::Status::ok();
  return it->second.verify_range(physical_offset, size);
}

common::ByteCount DataServer::stored_bytes(common::FileId file) const {
  auto it = stores_.find(file);
  return it == stores_.end() ? 0 : it->second.stored_bytes();
}

const ExtentStore* DataServer::store(common::FileId file) const {
  auto it = stores_.find(file);
  return it == stores_.end() ? nullptr : &it->second;
}

ExtentStore* DataServer::mutable_store(common::FileId file) {
  auto it = stores_.find(file);
  return it == stores_.end() ? nullptr : &it->second;
}

}  // namespace mha::pfs
