#include "pfs/data_server.hpp"

namespace mha::pfs {

common::Seconds DataServer::write(common::FileId file, common::Offset physical_offset,
                                  const std::uint8_t* data, common::ByteCount size,
                                  common::Seconds arrival) {
  store(file, physical_offset, data, size);
  return sim_.submit(common::OpType::kWrite, size, arrival);
}

common::Seconds DataServer::read(common::FileId file, common::Offset physical_offset,
                                 std::uint8_t* out, common::ByteCount size,
                                 common::Seconds arrival) {
  load(file, physical_offset, out, size);
  return sim_.submit(common::OpType::kRead, size, arrival);
}

void DataServer::store(common::FileId file, common::Offset physical_offset,
                       const std::uint8_t* data, common::ByteCount size) {
  if (store_data_) stores_[file].write(physical_offset, data, size);
}

void DataServer::load(common::FileId file, common::Offset physical_offset, std::uint8_t* out,
                      common::ByteCount size) const {
  auto it = stores_.find(file);
  if (it != stores_.end()) {
    it->second.read(physical_offset, out, size);
  } else if (size > 0) {
    std::fill(out, out + size, 0);
  }
}

common::ByteCount DataServer::stored_bytes(common::FileId file) const {
  auto it = stores_.find(file);
  return it == stores_.end() ? 0 : it->second.stored_bytes();
}

const ExtentStore* DataServer::store(common::FileId file) const {
  auto it = stores_.find(file);
  return it == stores_.end() ? nullptr : &it->second;
}

}  // namespace mha::pfs
