// One PFS data server: byte-accurate storage plus the timing model.
//
// Combines an ExtentStore per file (what OrangeFS calls a bstream per
// handle) with a ServerSim queue.  The file system layer addresses data
// servers by index and hands them (file, physical offset) sub-requests.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "pfs/extent_store.hpp"
#include "sim/fault_hook.hpp"
#include "sim/server_sim.hpp"

namespace mha::pfs {

class DataServer {
 public:
  /// `store_data = false` makes the server timing-only: writes are charged
  /// but payloads discarded and reads return zeros.  Benches use this to run
  /// paper-scale file sizes without holding gigabytes in memory; integrity
  /// tests keep it on.
  DataServer(common::ServerKind kind, sim::DeviceProfile device, sim::NetworkProfile network,
             bool store_data = true)
      : sim_(kind, std::move(device), std::move(network)), store_data_(store_data) {}

  bool stores_data() const { return store_data_; }

  common::ServerKind kind() const { return sim_.kind(); }
  sim::ServerSim& sim() { return sim_; }
  const sim::ServerSim& sim() const { return sim_; }

  /// Stores bytes and charges the device; returns completion time.
  common::Seconds write(common::FileId file, common::Offset physical_offset,
                        const std::uint8_t* data, common::ByteCount size,
                        common::Seconds arrival);

  /// Loads bytes (holes read as zero) and charges the device.
  common::Seconds read(common::FileId file, common::Offset physical_offset,
                       std::uint8_t* out, common::ByteCount size,
                       common::Seconds arrival);

  /// Data-only paths (no timing): the file system uses these to move the
  /// pieces of a striped request and charges the device once per server,
  /// since the per-server physical image of one request is contiguous and a
  /// PFS client ships it as a single message.
  void store(common::FileId file, common::Offset physical_offset, const std::uint8_t* data,
             common::ByteCount size);
  void load(common::FileId file, common::Offset physical_offset, std::uint8_t* out,
            common::ByteCount size) const;

  /// Batched store: all of one batch's pieces destined for `file` on this
  /// server, applied in list order with every touched checksum chunk
  /// recomputed exactly once (see ExtentStore::write_batch).  Content and
  /// CRC state identical to per-piece store()s.
  void store_batch(common::FileId file, std::span<const ExtentStore::IoSlice> slices);

  /// store() with a silent-corruption decision applied to the content plane
  /// (bit-rot / torn / misdirected; kNone degrades to a plain store).
  void store_faulted(common::FileId file, common::Offset physical_offset,
                     const std::uint8_t* data, common::ByteCount size,
                     const sim::WriteFault& fault);

  /// load() preceded by per-chunk checksum verification; kCorruption names
  /// the first inconsistent chunk.  Absent files read as zero (trivially
  /// consistent), matching load().
  common::Status load_verified(common::FileId file, common::Offset physical_offset,
                               std::uint8_t* out, common::ByteCount size) const;

  /// The verification half of load_verified without the copy-out.  Batched
  /// reads verify one coalesced physical run per server — the same chunk
  /// set the per-sub verifications would cover, paid once — then move bytes
  /// with raw load()s.  Absent files verify trivially, matching
  /// load_verified.
  common::Status verify_range(common::FileId file, common::Offset physical_offset,
                              common::ByteCount size) const;

  /// Drops all extents of `file` (file removal).
  void remove_file(common::FileId file) { stores_.erase(file); }

  /// Bytes currently stored for `file` on this server.
  common::ByteCount stored_bytes(common::FileId file) const;

  const ExtentStore* store(common::FileId file) const;

  /// Mutable store access for the scrubber / corruption sweeps (nullptr when
  /// the file holds nothing here or the server is timing-only).
  ExtentStore* mutable_store(common::FileId file);

 private:
  sim::ServerSim sim_;
  std::unordered_map<common::FileId, ExtentStore> stores_;
  bool store_data_ = true;
};

}  // namespace mha::pfs
