// Sparse in-memory byte store — the per-server, per-file "disk contents".
//
// Correctness substrate only: timing is charged by sim::ServerSim.  Supports
// arbitrary overlapping writes, reads of unwritten ranges (zero-filled, like
// a POSIX sparse file), and exact equality checks used heavily by the
// data-integrity property tests.
//
// Integrity layer: every write also maintains a CRC-32 per fixed-size chunk
// of the physical offset space, computed over the *materialized* chunk
// content (holes read as zero, so the checksum is well-defined for any
// sparse state).  verified_read() recomputes and compares before handing
// bytes out — the end-to-end defence against silent corruption (bit rot,
// torn writes, misdirected writes).  The checksum metadata lives in flat
// vectors that only grow when the file grows, and verification stages chunks
// through a member scratch buffer, so the steady-state request path stays
// allocation-free (the PR 4 contract).
//
// Corruption-injection primitives (corrupt_flip / write_torn /
// write_unchecked) intentionally break the write/checksum pairing; they
// model the silent-fault kinds in fault::FaultInjector and exist only for
// the integrity tests, the scrubber and the fault benches.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"

namespace mha::pfs {

class ExtentStore {
 public:
  /// Granularity of checksum maintenance and verification.  64 KiB matches
  /// the default stripe, so the common aligned request touches one chunk.
  static constexpr common::ByteCount kChecksumChunk = 64 * 1024;

  /// One inconsistent chunk found by verify_chunks().
  struct ChunkFault {
    common::Offset offset = 0;       ///< chunk start (physical)
    common::ByteCount length = 0;    ///< always kChecksumChunk
    std::uint32_t expected_crc = 0;  ///< stored checksum (0 when orphan)
    std::uint32_t actual_crc = 0;    ///< recomputed over materialized content
    /// Data present but never checksummed — the signature of a misdirected
    /// write landing where no legitimate write ever did.
    bool orphan = false;
  };

  /// Writes `data` at `offset`, overwriting any overlap and merging
  /// adjacent extents.  Recomputes the checksum of every touched chunk.
  void write(common::Offset offset, const std::vector<std::uint8_t>& data);
  void write(common::Offset offset, const std::uint8_t* data, common::ByteCount size);

  /// One piece of a batched write (physical offset + borrowed payload).
  struct IoSlice {
    common::Offset offset = 0;
    const std::uint8_t* data = nullptr;
    common::ByteCount size = 0;
  };

  /// Applies `slices` in list order (so overlaps resolve exactly as the
  /// equivalent sequence of write() calls would), then recomputes each
  /// touched checksum chunk exactly once.  Because the checksum of a chunk
  /// is a pure function of its final content, the resulting extent map and
  /// CRC state are identical to per-slice write()s — the batch merely stops
  /// paying the full chunk staging + CRC once per slice when many slices
  /// share a chunk (the dominant cost of small sub-stripe writes).
  void write_batch(std::span<const IoSlice> slices);

  /// Reads `size` bytes at `offset`; unwritten holes read as zero.
  std::vector<std::uint8_t> read(common::Offset offset, common::ByteCount size) const;
  void read(common::Offset offset, std::uint8_t* out, common::ByteCount size) const;

  /// Verifies every chunk overlapping [offset, offset+size) against its
  /// stored CRC, then reads.  On mismatch returns kCorruption naming the
  /// chunk offset plus expected vs. actual CRC and leaves `out` untouched.
  common::Status verified_read(common::Offset offset, std::uint8_t* out,
                               common::ByteCount size) const;

  /// The verification half of verified_read (no data copy-out).
  common::Status verify_range(common::Offset offset, common::ByteCount size) const;

  /// Sweeps every chunk that holds data or a checksum and reports each
  /// inconsistency to `sink`; returns the number of faulty chunks.
  std::size_t verify_chunks(const std::function<void(const ChunkFault&)>& sink) const;

  // --- corruption injection (tests / fault benches only) -------------------

  /// Flips the bits under `mask` at `offset` without touching checksums;
  /// returns false when the byte is an unwritten hole (nothing to rot).
  bool corrupt_flip(common::Offset offset, std::uint8_t mask = 0x01);

  /// Torn write: persists only the first `prefix` bytes of the payload while
  /// recording checksums as if the full write had landed (a lost tail, the
  /// classic interrupted-write failure).
  void write_torn(common::Offset offset, const std::uint8_t* data, common::ByteCount size,
                  common::ByteCount prefix);

  /// Raw write bypassing checksum maintenance — a misdirected write landing
  /// at the wrong physical offset without the firmware noticing.
  void write_unchecked(common::Offset offset, const std::uint8_t* data,
                       common::ByteCount size);

  /// True if every byte of [offset, offset+size) has been written.
  bool covered(common::Offset offset, common::ByteCount size) const;

  /// One past the highest written byte; 0 when empty.
  common::Offset end_offset() const;

  /// Total bytes currently stored (excludes holes).
  common::ByteCount stored_bytes() const;

  /// Number of distinct extents (fragmentation metric, used in tests).
  std::size_t extent_count() const { return extents_.size(); }

  /// Physical offset of the n-th stored byte in offset order (corruption
  /// sweeps pick rot sites uniformly over stored data with this).
  common::Result<common::Offset> nth_stored_byte(common::ByteCount n) const;

  void clear() {
    extents_.clear();
    chunk_crcs_.clear();
    chunk_valid_.clear();
  }

 private:
  /// The pre-integrity write path: mutates extents only.
  void raw_write(common::Offset offset, const std::uint8_t* data, common::ByteCount size);

  /// Recomputes the checksum of every chunk overlapping [offset, end).
  void rechecksum(common::Offset offset, common::ByteCount size);

  /// CRC over the materialized content of chunk `c` (stages through
  /// scratch_; const because verification needs it).
  std::uint32_t chunk_crc(std::size_t c) const;

  /// Verifies one chunk; fills `fault` and returns false on inconsistency.
  bool check_chunk(std::size_t c, ChunkFault& fault) const;

  void ensure_chunks(std::size_t count);

  // offset -> contiguous run of bytes; invariants: runs are non-empty,
  // non-overlapping and non-adjacent (adjacent runs are merged).
  std::map<common::Offset, std::vector<std::uint8_t>> extents_;
  // Per-chunk CRC-32 plus a validity flag (a chunk becomes valid on its
  // first checksummed write).  Grows only when the file grows.
  std::vector<std::uint32_t> chunk_crcs_;
  std::vector<std::uint8_t> chunk_valid_;
  // Chunk staging buffer, sized once to kChecksumChunk; mutable so the
  // const verification paths can reuse it (single-client rule, see
  // core/drt.hpp).
  mutable std::vector<std::uint8_t> scratch_;
  // write_batch scratch: per-slice [first, last] chunk ranges, sorted and
  // merged for the deduplicated rechecksum pass.  Capacity is retained
  // across batches (zero-alloc steady state).
  std::vector<std::pair<std::size_t, std::size_t>> batch_chunks_;
};

}  // namespace mha::pfs
