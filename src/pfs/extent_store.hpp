// Sparse in-memory byte store — the per-server, per-file "disk contents".
//
// Correctness substrate only: timing is charged by sim::ServerSim.  Supports
// arbitrary overlapping writes, reads of unwritten ranges (zero-filled, like
// a POSIX sparse file), and exact equality checks used heavily by the
// data-integrity property tests.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.hpp"

namespace mha::pfs {

class ExtentStore {
 public:
  /// Writes `data` at `offset`, overwriting any overlap and merging
  /// adjacent extents.
  void write(common::Offset offset, const std::vector<std::uint8_t>& data);
  void write(common::Offset offset, const std::uint8_t* data, common::ByteCount size);

  /// Reads `size` bytes at `offset`; unwritten holes read as zero.
  std::vector<std::uint8_t> read(common::Offset offset, common::ByteCount size) const;
  void read(common::Offset offset, std::uint8_t* out, common::ByteCount size) const;

  /// True if every byte of [offset, offset+size) has been written.
  bool covered(common::Offset offset, common::ByteCount size) const;

  /// One past the highest written byte; 0 when empty.
  common::Offset end_offset() const;

  /// Total bytes currently stored (excludes holes).
  common::ByteCount stored_bytes() const;

  /// Number of distinct extents (fragmentation metric, used in tests).
  std::size_t extent_count() const { return extents_.size(); }

  void clear() { extents_.clear(); }

 private:
  // offset -> contiguous run of bytes; invariants: runs are non-empty,
  // non-overlapping and non-adjacent (adjacent runs are merged).
  std::map<common::Offset, std::vector<std::uint8_t>> extents_;
};

}  // namespace mha::pfs
