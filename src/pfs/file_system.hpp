// The hybrid parallel file system facade (OrangeFS stand-in).
//
// Wires the metadata server to a row of data servers — `num_hservers`
// HDD-backed ones first, then `num_sservers` SSD-backed ones, matching the
// paper's S0..S5 = HServers / S6..S7 = SServers numbering — and exposes the
// client view: create/open a striped file, read/write byte extents.  Every
// operation carries a virtual arrival time and returns its virtual
// completion time; bytes are stored exactly so data integrity is testable
// end to end.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/small_vec.hpp"
#include "common/types.hpp"
#include "fault/context.hpp"
#include "guard/guard.hpp"
#include "pfs/data_server.hpp"
#include "pfs/metadata_server.hpp"
#include "sched/scheduler.hpp"
#include "sim/cluster_sim.hpp"

namespace mha::repair {
class Membership;
}  // namespace mha::repair

namespace mha::pfs {

/// Outcome of one file request.
struct IoResult {
  common::Seconds completion = 0.0;  ///< when the slowest sub-request finished
  std::size_t servers_touched = 0;
  std::size_t sub_requests = 0;
};

/// One request of a batched read_batch/write_batch call.  `group` ties
/// together sibling segments that one middleware request was split into:
/// when a group member fails, later members of the same group are skipped
/// (exactly what the serial client does when it stops at the first failing
/// segment).  Groups must be contiguous in the batch and independent
/// requests must use distinct group ids — MpiFile assigns the record index.
struct BatchRequest {
  common::FileId file = 0;
  common::Offset offset = 0;
  common::ByteCount size = 0;
  /// Destination for read_batch (ignored by write_batch).
  std::uint8_t* read_out = nullptr;
  /// Payload for write_batch (ignored by read_batch).
  const std::uint8_t* write_data = nullptr;
  common::Seconds arrival = 0.0;
  common::JobId job = common::kDefaultJob;
  common::Seconds deadline = std::numeric_limits<double>::infinity();
  std::uint32_t group = 0;
};

/// Per-request outcome of a batched call, index-parallel to the input span.
struct BatchOpResult {
  common::Status status;
  IoResult io;
  /// True when the request was never issued because an earlier member of
  /// its group failed; `status` stays ok and `io` is zero.
  bool skipped = false;
};

using BatchResultVec = common::SmallVec<BatchOpResult, 8>;

struct PfsOptions {
  /// Optional KV file persisting per-file layouts (the RST).
  std::string rst_path;
  /// When false the data servers are timing-only (see DataServer).
  bool store_data = true;
};

/// Everything the failover machinery decided (FaultMetrics style): reads
/// retargeted from dead servers to replicas, writes mirrored to keep
/// replicas coherent, and requests that found no surviving copy.
struct FailoverStats {
  std::uint64_t failover_reads = 0;   ///< replica sub-reads serving a dead primary
  common::ByteCount failover_bytes = 0;
  std::uint64_t failover_writes = 0;  ///< primary sub-writes skipped (dead server)
  std::uint64_t mirrored_writes = 0;  ///< replica sub-writes keeping copies in sync
  common::ByteCount mirror_bytes = 0;
  std::uint64_t unavailable = 0;      ///< requests with no surviving copy
};

class HybridPfs {
 public:
  explicit HybridPfs(const sim::ClusterConfig& config, PfsOptions options = {});
  /// Back-compat convenience: options default except the RST path.
  HybridPfs(const sim::ClusterConfig& config, std::string rst_path);

  std::size_t num_servers() const { return servers_.size(); }
  std::size_t num_hservers() const { return num_hservers_; }
  std::size_t num_sservers() const { return servers_.size() - num_hservers_; }
  bool is_hserver(std::size_t i) const { return i < num_hservers_; }

  const sim::ClusterConfig& config() const { return config_; }

  MetadataServer& mds() { return mds_; }
  const MetadataServer& mds() const { return mds_; }
  DataServer& data_server(std::size_t i) { return *servers_[i]; }
  const DataServer& data_server(std::size_t i) const { return *servers_[i]; }

  /// Attaches a client-side I/O scheduler (borrowed; may be nullptr).  When
  /// set, every read/write dispatches its sub-requests through the policy;
  /// null keeps the direct FCFS-at-arrival path.
  void set_scheduler(sched::Scheduler* scheduler) { scheduler_ = scheduler; }
  sched::Scheduler* scheduler() const { return scheduler_; }

  /// The scheduler-facing view over this cluster's server queues.
  const sched::ServerRow& server_row() const { return row_; }

  /// Tenant job every subsequent read/write is charged against.  The
  /// replayer stamps this before each request (a store, not an allocation,
  /// so the zero-alloc request path is untouched); single-tenant callers
  /// never touch it and stay on job 0.
  void set_active_job(common::JobId job) { active_job_ = job; }
  common::JobId active_job() const { return active_job_; }

  /// Attaches an overload guard (borrowed; may be nullptr).  While set,
  /// every dispatch consults the guard's admission gate (shedding with a
  /// typed kOverloaded Status before any server is charged), feeds backlog
  /// observations to the per-server breakers, and — on the degraded path —
  /// reroutes HServer reads away from open breakers, spends retry tokens
  /// for every backoff retry, and enforces the active deadline by
  /// cancelling already-charged siblings when a sub-request would complete
  /// past it.
  void set_guard(guard::OverloadGuard* g) { guard_ = g; }
  guard::OverloadGuard* guard() const { return guard_; }

  /// End-to-end deadline of every subsequent request (virtual seconds;
  /// infinity disables).  The replayer stamps arrival + the job's tier
  /// allowance before each request, same store-only contract as
  /// set_active_job.  Enforced only while a guard is attached.
  void set_active_deadline(common::Seconds deadline) { active_deadline_ = deadline; }
  common::Seconds active_deadline() const { return active_deadline_; }

  /// Attaches a fault context (borrowed; may be nullptr).  While set, every
  /// server queue consults the context's injector (crashes push start times,
  /// brownouts inflate service — visible to scheduler look-ahead), and
  /// dispatch runs the degraded-mode client path: transient failures retry
  /// with capped exponential backoff under a virtual-time budget, reads from
  /// offline HServers re-charge to the least-loaded online SServer replica,
  /// writes to offline servers park in the redo log and replay on recovery.
  void set_fault_context(fault::FaultContext* fault);
  fault::FaultContext* fault_context() const { return fault_; }

  /// Attaches a cluster membership view (borrowed; may be nullptr).  While
  /// set, every sub-request targeting a dead server fails over: reads
  /// retarget to the file's registered replica (exact per-job charge
  /// attribution — the replica's servers are charged under the requester's
  /// job), writes mirror to the replica so copies stay coherent, and
  /// requests over dead unreplicated data surface a typed kUnavailable.
  /// With no dead servers the request path pays one pointer test.
  void set_membership(const repair::Membership* membership) { membership_ = membership; }
  const repair::Membership* membership() const { return membership_; }

  /// Registers `replica` as the failover copy of `primary`.  The replica
  /// must cover the same logical byte space (byte k of primary == byte k of
  /// replica); the Redirector registers region replicas from the DRT's
  /// replica column.  Flat-array lookup, zero-alloc on the request path.
  void set_replica(common::FileId primary, common::FileId replica);
  void clear_replica(common::FileId primary);
  /// Replica of `primary`, kInvalidFileId when unreplicated.
  common::FileId replica_of(common::FileId primary) const {
    return primary < replica_of_.size() ? replica_of_[primary] : common::kInvalidFileId;
  }

  const FailoverStats& failover_stats() const { return failover_stats_; }
  void reset_failover_stats() { failover_stats_ = FailoverStats{}; }

  /// Drops every extent stored on server `server` — the content-plane half
  /// of permanent loss (repair::kill_server calls this so the data is
  /// really gone, not just unreachable).
  void wipe_server(std::size_t server);

  /// Creates a file with the given layout (layout width count must equal the
  /// server count).
  common::Result<common::FileId> create_file(const std::string& name,
                                             StripeLayout layout);

  /// Creates with the default fixed 64 KiB stripes (the DEF scheme).
  common::Result<common::FileId> create_file(const std::string& name);

  common::Result<common::FileId> open(const std::string& name) const;

  common::Result<IoResult> write(common::FileId file, common::Offset offset,
                                 const std::uint8_t* data, common::ByteCount size,
                                 common::Seconds arrival);

  common::Result<IoResult> read(common::FileId file, common::Offset offset,
                                std::uint8_t* out, common::ByteCount size,
                                common::Seconds arrival) const;

  /// Batched request path: issues every request of `reqs` with semantics
  /// identical to calling write()/read() serially in batch order (same
  /// stored bytes and CRC state, same per-server queue evolution, same
  /// aggregate and per-job stats, same Statuses), while paying the batch
  /// costs once instead of per request.  Without a guard or fault context
  /// the fast path runs: one vectorized translate pass, per-(server, file)
  /// coalesced content-plane ops (one store_batch / merged verify_range
  /// per physical run), and ONE ServerSim dispatch per touched server
  /// carrying the whole batch's sub-op list.  With a guard attached the
  /// admission gate, deadline enforcement and tier shedding run per
  /// request inside the batch (the guard picks its victims request by
  /// request); with a fault context the degraded path and the silent-fault
  /// RNG draw order are preserved exactly — both fall back to the serial
  /// member functions per request.  `results` is cleared and filled
  /// index-parallel to `reqs`.  Zero heap allocations in the steady state:
  /// all scratch is owned by this HybridPfs and retains capacity across
  /// batches (same single-client rule as the serial scratch).
  void write_batch(std::span<const BatchRequest> reqs, BatchResultVec& results);
  void read_batch(std::span<const BatchRequest> reqs, BatchResultVec& results);

  /// Convenience byte-vector overloads.
  common::Result<IoResult> write(common::FileId file, common::Offset offset,
                                 const std::vector<std::uint8_t>& data,
                                 common::Seconds arrival);
  common::Result<std::vector<std::uint8_t>> read_bytes(common::FileId file,
                                                       common::Offset offset,
                                                       common::ByteCount size,
                                                       common::Seconds arrival) const;

  common::Status remove(const std::string& name);

  common::ByteCount file_size(common::FileId file) const { return mds_.info(file).size; }

  /// Total bytes of `file` stored across all servers.
  common::ByteCount stored_bytes(common::FileId file) const;

  /// Per-server timing statistics (the measurement window for every bench).
  void reset_stats();
  /// Rewinds every server queue to empty at t=0.
  void reset_clocks();
  const sim::ServerStats& server_stats(std::size_t i) const {
    return servers_[i]->sim().stats();
  }
  std::string stats_table() const;

 private:
  /// Charges the per-server sub-requests of one file request, either through
  /// the attached scheduler or directly (FCFS at arrival).  With a fault
  /// context attached, runs the degraded-mode path instead; a sub-request
  /// that exhausts its retry/timeout budget surfaces a non-ok Status.
  common::Status dispatch(common::FileId file, common::OpType op,
                          const std::vector<common::ByteCount>& per_server,
                          common::Seconds arrival, IoResult& result) const;
  common::Status dispatch_degraded(common::FileId file, common::OpType op,
                                   const std::vector<common::ByteCount>& per_server,
                                   common::Seconds arrival, IoResult& result) const;
  /// Charges one resolved sub-request at `t` (scheduler or direct path) and
  /// collects its cancellation receipt in receipts_.
  void charge_sub(common::OpType op, std::size_t server, common::ByteCount bytes,
                  common::Seconds t, IoResult& result) const;
  /// Admission gate + backlog observation for one request; non-ok when the
  /// guard shed it.  No-op without a guard.
  common::Status admit_request(const std::vector<common::ByteCount>& per_server,
                               common::Seconds arrival) const;
  /// Cancels every receipt collected for the current request, newest first
  /// (LIFO, the only order try_cancel can unwind).  Charges that later
  /// admissions baked in stay — those bytes are marked wasted on their
  /// server (and the guard's ledger when one is attached).
  void rewind_receipts() const;
  /// Least-backlog online SServer whose breaker is closed (the degraded-read
  /// and breaker-reroute fallback target); servers_.size() when none.
  std::size_t pick_fallback_sserver(common::Seconds t) const;

  /// True when a membership view is attached and reports at least one dead
  /// server — the only case the failover branches below are entered.
  bool failover_active() const;
  /// Serves one sub-extent of a dead server from `file`'s replica: loads the
  /// replica's bytes into `out` (verified) and charges the replica servers
  /// in per_server_.  kUnavailable when no surviving copy exists.
  common::Status failover_read_sub(common::FileId file, const SubExtent& sub,
                                   std::uint8_t* out) const;
  /// Mirrors one sub-extent's payload onto `replica` (store + per_server_
  /// charge), keeping the copies coherent for future failover.
  common::Status mirror_write_sub(common::FileId replica, const SubExtent& sub,
                                  const std::uint8_t* data);

  /// True when batches may take the coalesced fast path: with no guard and
  /// no fault context a dispatch cannot fail, so reordering the content
  /// plane ahead of the timing plane is unobservable.
  bool batch_fast_path() const { return guard_ == nullptr && fault_ == nullptr; }
  /// Exact-equivalence fallback: every request issued through the serial
  /// write()/read() member in batch order (guard decisions, fault RNG draws
  /// and degraded-mode bookkeeping all happen in the serial sequence),
  /// honouring group skip.  Restores active job/deadline afterwards.
  void batch_serial(common::OpType op, std::span<const BatchRequest> reqs,
                    BatchResultVec& results);
  /// Fast-path pass 1: validates file ids and translates every request's
  /// extents into the flat batch_subs_ list (per-request ranges in
  /// batch_sub_begin_), applying group skip for translate failures.  Op-
  /// aware for failover: dead-server subs retarget to replica subs (reads)
  /// or are replaced by mirror subs (writes, which mirror on live primaries
  /// too); a request with no surviving copy fails here with kUnavailable
  /// and contributes no subs.  Returns false when no request survived.
  bool batch_translate(common::OpType op, std::span<const BatchRequest> reqs,
                       BatchResultVec& results);
  /// Fast-path timing plane: per-request per-server aggregation, then either
  /// one scheduler dispatch per request (scheduler attached) or one
  /// charge_batch call per touched server for the whole batch.
  void batch_dispatch(common::OpType op, std::span<const BatchRequest> reqs,
                      BatchResultVec& results);

  sim::ClusterConfig config_;
  MetadataServer mds_;
  std::vector<std::unique_ptr<DataServer>> servers_;
  std::size_t num_hservers_ = 0;
  sched::Scheduler* scheduler_ = nullptr;
  fault::FaultContext* fault_ = nullptr;
  guard::OverloadGuard* guard_ = nullptr;
  const repair::Membership* membership_ = nullptr;
  /// FileId -> replica FileId (kInvalidFileId), grown by set_replica only.
  std::vector<common::FileId> replica_of_;
  /// Mutated under const on the read path (same single-client rule as the
  /// scratch below).
  mutable FailoverStats failover_stats_;
  common::JobId active_job_ = common::kDefaultJob;
  common::Seconds active_deadline_ = std::numeric_limits<double>::infinity();
  sched::ServerRow row_;
  // Request-path scratch, reused across read/write calls so the steady state
  // performs zero heap allocations per request.  Same single-client rule as
  // Drt's lookup hint: a HybridPfs may be shared across threads only with
  // external synchronisation (the bench harness gives each thread its own
  // world, so this is free there).
  mutable std::vector<common::ByteCount> per_server_;
  mutable StripeLayout::SubExtentVec extents_;
  /// Second mapping scratch for replica extents (nested inside the extents_
  /// walk, so it cannot share).
  mutable StripeLayout::SubExtentVec failover_extents_;
  mutable common::SmallVec<sim::SubRequest, 8> subs_;
  /// Cancellation receipts of the in-flight request's charged siblings.
  struct SubCharge {
    std::size_t server = 0;
    sim::Charge charge;
  };
  mutable common::SmallVec<SubCharge, 8> receipts_;
  // Batch-path scratch (same ownership rule as the serial scratch above).
  /// One translated sub-extent of one batch request.
  struct BatchSub {
    std::uint32_t req = 0;  ///< index into the batch
    std::uint32_t server = 0;
    common::FileId file = 0;
    common::Offset physical_offset = 0;
    common::ByteCount length = 0;
    common::Offset logical_offset = 0;
  };
  mutable common::SmallVec<BatchSub, 32> batch_subs_;
  /// Per-request [begin, end) ranges into batch_subs_ (size = reqs + 1).
  mutable common::SmallVec<std::uint32_t, 16> batch_sub_begin_;
  /// Sorted copy of batch_subs_ for content-plane grouping/coalescing.
  mutable common::SmallVec<BatchSub, 32> batch_sorted_;
  /// Flattened (server, sub-op) list for the one-dispatch-per-server pass.
  struct BatchCharge {
    std::uint32_t server = 0;
    sim::ServerSim::BatchSubOp op;
  };
  mutable common::SmallVec<BatchCharge, 32> batch_charges_;
  /// One server's contiguous sub-op list handed to ServerSim::charge_batch.
  mutable common::SmallVec<sim::ServerSim::BatchSubOp, 32> batch_server_ops_;
  /// Per-(server, file) slice list handed to DataServer::store_batch.
  mutable common::SmallVec<ExtentStore::IoSlice, 32> batch_slices_;
};

/// The file-system default stripe size (OrangeFS ships 64 KiB).
inline constexpr common::ByteCount kDefaultStripe = 64 * 1024;

}  // namespace mha::pfs
