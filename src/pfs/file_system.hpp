// The hybrid parallel file system facade (OrangeFS stand-in).
//
// Wires the metadata server to a row of data servers — `num_hservers`
// HDD-backed ones first, then `num_sservers` SSD-backed ones, matching the
// paper's S0..S5 = HServers / S6..S7 = SServers numbering — and exposes the
// client view: create/open a striped file, read/write byte extents.  Every
// operation carries a virtual arrival time and returns its virtual
// completion time; bytes are stored exactly so data integrity is testable
// end to end.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/small_vec.hpp"
#include "common/types.hpp"
#include "fault/context.hpp"
#include "guard/guard.hpp"
#include "pfs/data_server.hpp"
#include "pfs/metadata_server.hpp"
#include "sched/scheduler.hpp"
#include "sim/cluster_sim.hpp"

namespace mha::pfs {

/// Outcome of one file request.
struct IoResult {
  common::Seconds completion = 0.0;  ///< when the slowest sub-request finished
  std::size_t servers_touched = 0;
  std::size_t sub_requests = 0;
};

struct PfsOptions {
  /// Optional KV file persisting per-file layouts (the RST).
  std::string rst_path;
  /// When false the data servers are timing-only (see DataServer).
  bool store_data = true;
};

class HybridPfs {
 public:
  explicit HybridPfs(const sim::ClusterConfig& config, PfsOptions options = {});
  /// Back-compat convenience: options default except the RST path.
  HybridPfs(const sim::ClusterConfig& config, std::string rst_path);

  std::size_t num_servers() const { return servers_.size(); }
  std::size_t num_hservers() const { return num_hservers_; }
  std::size_t num_sservers() const { return servers_.size() - num_hservers_; }
  bool is_hserver(std::size_t i) const { return i < num_hservers_; }

  const sim::ClusterConfig& config() const { return config_; }

  MetadataServer& mds() { return mds_; }
  const MetadataServer& mds() const { return mds_; }
  DataServer& data_server(std::size_t i) { return *servers_[i]; }
  const DataServer& data_server(std::size_t i) const { return *servers_[i]; }

  /// Attaches a client-side I/O scheduler (borrowed; may be nullptr).  When
  /// set, every read/write dispatches its sub-requests through the policy;
  /// null keeps the direct FCFS-at-arrival path.
  void set_scheduler(sched::Scheduler* scheduler) { scheduler_ = scheduler; }
  sched::Scheduler* scheduler() const { return scheduler_; }

  /// The scheduler-facing view over this cluster's server queues.
  const sched::ServerRow& server_row() const { return row_; }

  /// Tenant job every subsequent read/write is charged against.  The
  /// replayer stamps this before each request (a store, not an allocation,
  /// so the zero-alloc request path is untouched); single-tenant callers
  /// never touch it and stay on job 0.
  void set_active_job(common::JobId job) { active_job_ = job; }
  common::JobId active_job() const { return active_job_; }

  /// Attaches an overload guard (borrowed; may be nullptr).  While set,
  /// every dispatch consults the guard's admission gate (shedding with a
  /// typed kOverloaded Status before any server is charged), feeds backlog
  /// observations to the per-server breakers, and — on the degraded path —
  /// reroutes HServer reads away from open breakers, spends retry tokens
  /// for every backoff retry, and enforces the active deadline by
  /// cancelling already-charged siblings when a sub-request would complete
  /// past it.
  void set_guard(guard::OverloadGuard* g) { guard_ = g; }
  guard::OverloadGuard* guard() const { return guard_; }

  /// End-to-end deadline of every subsequent request (virtual seconds;
  /// infinity disables).  The replayer stamps arrival + the job's tier
  /// allowance before each request, same store-only contract as
  /// set_active_job.  Enforced only while a guard is attached.
  void set_active_deadline(common::Seconds deadline) { active_deadline_ = deadline; }
  common::Seconds active_deadline() const { return active_deadline_; }

  /// Attaches a fault context (borrowed; may be nullptr).  While set, every
  /// server queue consults the context's injector (crashes push start times,
  /// brownouts inflate service — visible to scheduler look-ahead), and
  /// dispatch runs the degraded-mode client path: transient failures retry
  /// with capped exponential backoff under a virtual-time budget, reads from
  /// offline HServers re-charge to the least-loaded online SServer replica,
  /// writes to offline servers park in the redo log and replay on recovery.
  void set_fault_context(fault::FaultContext* fault);
  fault::FaultContext* fault_context() const { return fault_; }

  /// Creates a file with the given layout (layout width count must equal the
  /// server count).
  common::Result<common::FileId> create_file(const std::string& name,
                                             StripeLayout layout);

  /// Creates with the default fixed 64 KiB stripes (the DEF scheme).
  common::Result<common::FileId> create_file(const std::string& name);

  common::Result<common::FileId> open(const std::string& name) const;

  common::Result<IoResult> write(common::FileId file, common::Offset offset,
                                 const std::uint8_t* data, common::ByteCount size,
                                 common::Seconds arrival);

  common::Result<IoResult> read(common::FileId file, common::Offset offset,
                                std::uint8_t* out, common::ByteCount size,
                                common::Seconds arrival) const;

  /// Convenience byte-vector overloads.
  common::Result<IoResult> write(common::FileId file, common::Offset offset,
                                 const std::vector<std::uint8_t>& data,
                                 common::Seconds arrival);
  common::Result<std::vector<std::uint8_t>> read_bytes(common::FileId file,
                                                       common::Offset offset,
                                                       common::ByteCount size,
                                                       common::Seconds arrival) const;

  common::Status remove(const std::string& name);

  common::ByteCount file_size(common::FileId file) const { return mds_.info(file).size; }

  /// Total bytes of `file` stored across all servers.
  common::ByteCount stored_bytes(common::FileId file) const;

  /// Per-server timing statistics (the measurement window for every bench).
  void reset_stats();
  /// Rewinds every server queue to empty at t=0.
  void reset_clocks();
  const sim::ServerStats& server_stats(std::size_t i) const {
    return servers_[i]->sim().stats();
  }
  std::string stats_table() const;

 private:
  /// Charges the per-server sub-requests of one file request, either through
  /// the attached scheduler or directly (FCFS at arrival).  With a fault
  /// context attached, runs the degraded-mode path instead; a sub-request
  /// that exhausts its retry/timeout budget surfaces a non-ok Status.
  common::Status dispatch(common::FileId file, common::OpType op,
                          const std::vector<common::ByteCount>& per_server,
                          common::Seconds arrival, IoResult& result) const;
  common::Status dispatch_degraded(common::FileId file, common::OpType op,
                                   const std::vector<common::ByteCount>& per_server,
                                   common::Seconds arrival, IoResult& result) const;
  /// Charges one resolved sub-request at `t` (scheduler or direct path) and
  /// collects its cancellation receipt in receipts_.
  void charge_sub(common::OpType op, std::size_t server, common::ByteCount bytes,
                  common::Seconds t, IoResult& result) const;
  /// Admission gate + backlog observation for one request; non-ok when the
  /// guard shed it.  No-op without a guard.
  common::Status admit_request(const std::vector<common::ByteCount>& per_server,
                               common::Seconds arrival) const;
  /// Cancels every receipt collected for the current request, newest first
  /// (LIFO, the only order try_cancel can unwind).  Charges that later
  /// admissions baked in stay — those bytes are marked wasted on their
  /// server (and the guard's ledger when one is attached).
  void rewind_receipts() const;
  /// Least-backlog online SServer whose breaker is closed (the degraded-read
  /// and breaker-reroute fallback target); servers_.size() when none.
  std::size_t pick_fallback_sserver(common::Seconds t) const;

  sim::ClusterConfig config_;
  MetadataServer mds_;
  std::vector<std::unique_ptr<DataServer>> servers_;
  std::size_t num_hservers_ = 0;
  sched::Scheduler* scheduler_ = nullptr;
  fault::FaultContext* fault_ = nullptr;
  guard::OverloadGuard* guard_ = nullptr;
  common::JobId active_job_ = common::kDefaultJob;
  common::Seconds active_deadline_ = std::numeric_limits<double>::infinity();
  sched::ServerRow row_;
  // Request-path scratch, reused across read/write calls so the steady state
  // performs zero heap allocations per request.  Same single-client rule as
  // Drt's lookup hint: a HybridPfs may be shared across threads only with
  // external synchronisation (the bench harness gives each thread its own
  // world, so this is free there).
  mutable std::vector<common::ByteCount> per_server_;
  mutable StripeLayout::SubExtentVec extents_;
  mutable common::SmallVec<sim::SubRequest, 8> subs_;
  /// Cancellation receipts of the in-flight request's charged siblings.
  struct SubCharge {
    std::size_t server = 0;
    sim::Charge charge;
  };
  mutable common::SmallVec<SubCharge, 8> receipts_;
};

/// The file-system default stripe size (OrangeFS ships 64 KiB).
inline constexpr common::ByteCount kDefaultStripe = 64 * 1024;

}  // namespace mha::pfs
