// Variable-stripe round-robin file layout.
//
// OrangeFS-style striping generalised to a per-server stripe width: the file
// is cut into "cycles"; cycle c places bytes [c*W, (c+1)*W) where W is the
// sum of all per-server widths, and inside a cycle each server i receives a
// contiguous slice of its width w_i.  The classic fixed-64KiB layout is the
// special case w_i = 64KiB for all i; MHA's <h, s> stripe pairs set
// w_i = h on HServers and w_i = s on SServers, including the h = 0
// "SServer-only" extreme that Algorithm 2 allows.
//
// The mapping is closed-form in both directions:
//   logical offset  ->  (server, server-local physical offset)
//   (server, physical offset)  ->  logical offset
// Physical placement on a server is itself dense: cycle c occupies
// [c*w_i, (c+1)*w_i) on server i, so no space is wasted.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/small_vec.hpp"
#include "common/types.hpp"

namespace mha::pfs {

/// One contiguous piece of a logical extent on one server.
struct SubExtent {
  std::size_t server = 0;
  common::Offset physical_offset = 0;
  common::ByteCount length = 0;
  /// Logical offset this piece starts at (for data copying).
  common::Offset logical_offset = 0;

  friend bool operator==(const SubExtent&, const SubExtent&) = default;
};

class StripeLayout {
 public:
  StripeLayout() = default;

  /// Builds a layout from explicit per-server widths (index == server id).
  /// At least one width must be non-zero.
  static common::Result<StripeLayout> create(std::vector<common::ByteCount> widths);

  /// Uniform layout: every one of `num_servers` servers gets `stripe`.
  static StripeLayout uniform(std::size_t num_servers, common::ByteCount stripe);

  /// The paper's stripe-pair form: the first `num_h` servers (HServers) get
  /// width `h`, the remaining `num_s` (SServers) get width `s`.  `h` may be
  /// zero (SServer-only data); `s` must be positive.
  static common::Result<StripeLayout> stripe_pair(std::size_t num_h, std::size_t num_s,
                                                  common::ByteCount h, common::ByteCount s);

  std::size_t num_servers() const { return widths_.size(); }
  common::ByteCount width(std::size_t server) const { return widths_[server]; }
  const std::vector<common::ByteCount>& widths() const { return widths_; }

  /// Bytes per full round-robin cycle (sum of widths).
  common::ByteCount cycle_width() const { return cycle_; }

  /// Caller-owned mapping scratch (request hot path; reuse across requests
  /// for zero steady-state allocations).
  using SubExtentVec = common::SmallVec<SubExtent, 8>;

  /// Splits logical extent [offset, offset+length) into per-server pieces in
  /// ascending logical order, appending into the caller's scratch (cleared
  /// first).  Adjacent pieces on the same server are coalesced.
  void map_extent(common::Offset offset, common::ByteCount length, SubExtentVec& out) const;

  /// Convenience wrapper (tests / cold paths).  length == 0 yields empty.
  std::vector<SubExtent> map_extent(common::Offset offset, common::ByteCount length) const;

  /// Maps a single logical offset to its server and physical offset.
  SubExtent map_offset(common::Offset offset) const;

  /// Inverse mapping; returns error if `physical_offset` cannot exist on
  /// `server` (e.g. the server has zero width).
  common::Result<common::Offset> logical_offset(std::size_t server,
                                                common::Offset physical_offset) const;

  /// Number of distinct servers that hold at least one byte of the extent.
  std::size_t servers_touched(common::Offset offset, common::ByteCount length) const;

  /// "h=64KiB,s=192KiB"-style description.
  std::string to_string() const;

  friend bool operator==(const StripeLayout&, const StripeLayout&) = default;

 private:
  explicit StripeLayout(std::vector<common::ByteCount> widths);

  std::vector<common::ByteCount> widths_;
  /// Exclusive prefix sums of widths (slot start offsets inside a cycle).
  std::vector<common::ByteCount> slot_start_;
  common::ByteCount cycle_ = 0;
};

}  // namespace mha::pfs
