#include "pfs/metadata_server.hpp"

#include <algorithm>
#include <cassert>
#include <charconv>

#include "common/log.hpp"

namespace mha::pfs {

MetadataServer::MetadataServer(std::string rst_path) : rst_path_(std::move(rst_path)) {
  if (!rst_path_.empty()) {
    kv::KvOptions options;
    options.sync = kv::SyncMode::kNone;
    common::Status s = rst_.open(rst_path_, options);
    if (s.is_ok()) {
      persistent_ = true;
    } else {
      MHA_WARN << "MDS: RST persistence disabled: " << s.to_string();
    }
  }
}

common::Result<common::FileId> MetadataServer::create_file(const std::string& name,
                                                           StripeLayout layout) {
  if (by_name_.contains(name)) {
    return common::Status::already_exists("file exists: " + name);
  }
  FileInfo info;
  info.id = static_cast<common::FileId>(files_.size());
  info.name = name;
  info.layout = std::move(layout);
  const common::FileId id = info.id;
  by_name_.emplace(name, id);
  files_.push_back(std::move(info));
  MHA_RETURN_IF_ERROR(persist(files_.back()));
  return id;
}

common::Result<common::FileId> MetadataServer::lookup(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return common::Status::not_found("no such file: " + name);
  return it->second;
}

bool MetadataServer::exists(const std::string& name) const { return by_name_.contains(name); }

const FileInfo& MetadataServer::info(common::FileId id) const {
  assert(id < files_.size());
  return files_[id];
}

FileInfo& MetadataServer::info(common::FileId id) {
  assert(id < files_.size());
  return files_[id];
}

common::Status MetadataServer::set_layout(common::FileId id, StripeLayout layout) {
  if (id >= files_.size()) return common::Status::out_of_range("bad file id");
  files_[id].layout = std::move(layout);
  return persist(files_[id]);
}

void MetadataServer::extend(common::FileId id, common::ByteCount end) {
  assert(id < files_.size());
  files_[id].size = std::max(files_[id].size, end);
}

common::Status MetadataServer::remove(const std::string& name) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return common::Status::not_found("no such file: " + name);
  // Keep the FileInfo slot (ids are stable) but drop it from the namespace.
  files_[it->second].name.clear();
  if (persistent_) MHA_RETURN_IF_ERROR(rst_.erase(name));
  by_name_.erase(it);
  return common::Status::ok();
}

std::vector<std::string> MetadataServer::list_files() const {
  std::vector<std::string> names;
  names.reserve(by_name_.size());
  for (const auto& [name, id] : by_name_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

std::string MetadataServer::encode_layout(const StripeLayout& layout) {
  std::string out;
  for (std::size_t i = 0; i < layout.num_servers(); ++i) {
    if (i) out += ",";
    out += std::to_string(layout.width(i));
  }
  return out;
}

common::Result<StripeLayout> MetadataServer::decode_layout(const std::string& text) {
  std::vector<common::ByteCount> widths;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  while (p < end) {
    common::ByteCount w = 0;
    auto [next, ec] = std::from_chars(p, end, w);
    if (ec != std::errc{}) return common::Status::corruption("bad RST row: " + text);
    widths.push_back(w);
    p = next;
    if (p < end) {
      if (*p != ',') return common::Status::corruption("bad RST row: " + text);
      ++p;
    }
  }
  return StripeLayout::create(std::move(widths));
}

common::Status MetadataServer::persist(const FileInfo& info) {
  if (!persistent_) return common::Status::ok();
  return rst_.put(info.name, encode_layout(info.layout));
}

common::Status MetadataServer::restore_from_rst() {
  if (!persistent_) return common::Status::failed_precondition("no RST backing file");
  common::Status status = common::Status::ok();
  rst_.for_each([&](std::string_view name, std::string_view row) {
    if (by_name_.contains(std::string(name))) return true;
    auto layout = decode_layout(std::string(row));
    if (!layout.is_ok()) {
      status = layout.status();
      return false;
    }
    FileInfo info;
    info.id = static_cast<common::FileId>(files_.size());
    info.name = std::string(name);
    info.layout = std::move(layout).take();
    by_name_.emplace(info.name, info.id);
    files_.push_back(std::move(info));
    return true;
  });
  return status;
}

}  // namespace mha::pfs
