// Global operator new/delete override that counts every heap allocation.
//
// Link this translation unit (target mha_alloc_hook) into a binary to make
// common::allocation_counter() live — see alloc_counter.hpp.  Kept out of
// mha_common on purpose so ordinary binaries never pay the interposition.
#include <cstdlib>
#include <new>

#include "common/alloc_counter.hpp"

namespace {

const bool g_linked = [] {
  mha::common::mark_allocation_hook_linked();
  return true;
}();

void* counted_alloc(std::size_t size) {
  mha::common::allocation_counter().fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* counted_alloc(std::size_t size, std::align_val_t align) {
  mha::common::allocation_counter().fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, align);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  mha::common::allocation_counter().fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  mha::common::allocation_counter().fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
