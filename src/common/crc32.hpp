// CRC-32 (IEEE 802.3 polynomial) used by the KV store's on-disk record
// framing and by trace-file integrity checks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mha::common {

/// Computes CRC-32 over `size` bytes starting at `data`, continuing from
/// `seed` (pass 0 for a fresh checksum; chain calls by passing the previous
/// result).
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

/// Convenience overload for string-like payloads.
inline std::uint32_t crc32(std::string_view s, std::uint32_t seed = 0) {
  return crc32(s.data(), s.size(), seed);
}

}  // namespace mha::common
