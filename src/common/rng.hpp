// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (workload generators, k-means
// initialisation, property-test data) takes an explicit seed so that runs
// are reproducible — a hard requirement for regenerating the paper's
// figures deterministically.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace mha::common {

/// xoshiro256** — small, fast, high-quality; good enough for workload
/// synthesis and clustering initialisation (not cryptography).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound); bound must be > 0.  Uses rejection
  /// sampling to avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Picks one element of `items` uniformly; items must be non-empty.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[next_below(items.size())];
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[next_below(i)]);
    }
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace mha::common
