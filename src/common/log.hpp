// Minimal leveled logger.  Defaults to warnings-and-above on stderr so that
// library use stays quiet; benches/examples raise the level explicitly.
#pragma once

#include <sstream>
#include <string>

namespace mha::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one formatted line to stderr ("[level] message").  Thread-safe.
void log_message(LogLevel level, const std::string& message);

namespace detail {

/// Builds the message lazily via operator<< and emits it on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace mha::common

#define MHA_LOG(level)                                             \
  if (static_cast<int>(level) < static_cast<int>(::mha::common::log_level())) \
    ;                                                              \
  else                                                             \
    ::mha::common::detail::LogLine(level)

#define MHA_DEBUG MHA_LOG(::mha::common::LogLevel::kDebug)
#define MHA_INFO MHA_LOG(::mha::common::LogLevel::kInfo)
#define MHA_WARN MHA_LOG(::mha::common::LogLevel::kWarn)
#define MHA_ERROR MHA_LOG(::mha::common::LogLevel::kError)
