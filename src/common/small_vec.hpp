// Small vector with inline capacity — the request hot path's scratch type.
//
// The per-request structures (DRT segments, redirect segments, striped
// sub-extents, scheduler sub-requests) are almost always tiny: a request
// touches a handful of region files and servers.  SmallVec<T, N> keeps up to
// N elements in inline storage and spills to the heap only beyond that, and
// clear() never releases capacity — so a caller-owned scratch SmallVec that
// is reused across requests performs zero heap allocations in steady state
// (at most one, on the first request that spills).
//
// Deliberately a subset of std::vector: append/clear/iterate/index, plus
// resize for fill-style use.  No insert/erase in the middle — hot-path
// consumers never need them, and the smaller surface keeps the type easy to
// audit.  Unlike std::vector, moving a SmallVec that sits in inline storage
// moves elements one by one (pointers into a SmallVec are invalidated by
// move — never hold them across one).
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace mha::common {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(N > 0, "SmallVec needs at least one inline slot");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() noexcept = default;

  SmallVec(const SmallVec& other) { append_range(other.begin(), other.end()); }

  SmallVec(SmallVec&& other) noexcept(std::is_nothrow_move_constructible_v<T>) {
    take_from(std::move(other));
  }

  SmallVec& operator=(const SmallVec& other) {
    if (this == &other) return *this;
    clear();
    append_range(other.begin(), other.end());
    return *this;
  }

  SmallVec& operator=(SmallVec&& other) noexcept(std::is_nothrow_move_constructible_v<T>) {
    if (this == &other) return *this;
    destroy_all();
    release_heap();
    take_from(std::move(other));
    return *this;
  }

  ~SmallVec() {
    destroy_all();
    release_heap();
  }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  iterator begin() noexcept { return data_; }
  iterator end() noexcept { return data_ + size_; }
  const_iterator begin() const noexcept { return data_; }
  const_iterator end() const noexcept { return data_ + size_; }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return capacity_; }
  /// True once the vector has spilled past its inline storage.
  bool spilled() const noexcept { return data_ != inline_data(); }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }
  T& front() noexcept { return data_[0]; }
  const T& front() const noexcept { return data_[0]; }
  T& back() noexcept { return data_[size_ - 1]; }
  const T& back() const noexcept { return data_[size_ - 1]; }

  /// Destroys all elements; capacity (inline or spilled) is retained.
  void clear() noexcept {
    destroy_all();
    size_ = 0;
  }

  void reserve(std::size_t n) {
    if (n > capacity_) grow_to(n);
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow_to(capacity_ * 2);
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void push_back(const T& value) { emplace_back(value); }
  void push_back(T&& value) { emplace_back(std::move(value)); }

  void pop_back() noexcept {
    --size_;
    data_[size_].~T();
  }

  /// Grows (value-initialized) or shrinks to exactly `n` elements.
  void resize(std::size_t n) {
    if (n > capacity_) grow_to(n);
    while (size_ > n) pop_back();
    while (size_ < n) emplace_back();
  }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (!(a.data_[i] == b.data_[i])) return false;
    }
    return true;
  }

 private:
  T* inline_data() noexcept { return reinterpret_cast<T*>(inline_storage_); }
  const T* inline_data() const noexcept { return reinterpret_cast<const T*>(inline_storage_); }

  void destroy_all() noexcept {
    for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
  }

  void release_heap() noexcept {
    if (spilled()) ::operator delete(data_);
    data_ = inline_data();
    capacity_ = N;
    size_ = 0;
  }

  void grow_to(std::size_t n) {
    if (n < capacity_ * 2) n = capacity_ * 2;
    T* fresh = static_cast<T*>(::operator new(n * sizeof(T)));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (spilled()) ::operator delete(data_);
    data_ = fresh;
    capacity_ = n;
  }

  void append_range(const T* first, const T* last) {
    reserve(size_ + static_cast<std::size_t>(last - first));
    for (; first != last; ++first) emplace_back(*first);
  }

  /// Move-adopts `other`'s contents; *this must be empty with no heap block.
  void take_from(SmallVec&& other) noexcept(std::is_nothrow_move_constructible_v<T>) {
    if (other.spilled()) {
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = other.inline_data();
      other.size_ = 0;
      other.capacity_ = N;
      return;
    }
    for (std::size_t i = 0; i < other.size_; ++i) {
      ::new (static_cast<void*>(data_ + i)) T(std::move(other.data_[i]));
      other.data_[i].~T();
    }
    size_ = other.size_;
    other.size_ = 0;
  }

  alignas(T) std::byte inline_storage_[N * sizeof(T)];
  T* data_ = inline_data();
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace mha::common
