// Heap-allocation counter for the zero-allocation request-path guarantee.
//
// The counter itself lives in the common library and always compiles to a
// relaxed atomic increment site — but it only ever moves when a binary also
// links the *hook* (src/common/alloc_hook.cpp), which overrides the global
// operator new/new[] to bump it.  Production binaries skip the hook and pay
// nothing; tests/alloc and bench/microbench link it and assert/report
// allocations-per-request as a counted number, not an estimate.
#pragma once

#include <atomic>
#include <cstdint>

namespace mha::common {

/// Global count of operator-new calls since process start.  Stays at zero
/// unless the allocation hook is linked into the binary.
std::atomic<std::uint64_t>& allocation_counter();

/// True when the counting hook is linked (the counter is live).
bool allocation_hook_linked();

/// Called once by the hook's static initializer; not for general use.
void mark_allocation_hook_linked();

/// Scoped delta reader: allocations() is the number of heap allocations
/// performed since construction.
class AllocationScope {
 public:
  AllocationScope() : start_(allocation_counter().load(std::memory_order_relaxed)) {}
  std::uint64_t allocations() const {
    return allocation_counter().load(std::memory_order_relaxed) - start_;
  }

 private:
  std::uint64_t start_;
};

}  // namespace mha::common
