#include "common/rng.hpp"

#include <cassert>

namespace mha::common {

namespace {

// splitmix64 used to expand the single seed into the xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // Guard against the all-zero state, which is a fixed point of xoshiro.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire-style rejection: discard values in the biased tail.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::next_in(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next_u64();  // full 64-bit range
  return lo + next_below(span);
}

double Rng::next_double() {
  // 53 high-quality bits into the mantissa.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

}  // namespace mha::common
