// Byte-unit helpers: KiB/MiB/GiB literals, formatting and parsing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace mha::common {

inline constexpr ByteCount kKiB = 1024ULL;
inline constexpr ByteCount kMiB = 1024ULL * kKiB;
inline constexpr ByteCount kGiB = 1024ULL * kMiB;

namespace literals {
constexpr ByteCount operator""_KiB(unsigned long long v) { return v * kKiB; }
constexpr ByteCount operator""_MiB(unsigned long long v) { return v * kMiB; }
constexpr ByteCount operator""_GiB(unsigned long long v) { return v * kGiB; }
}  // namespace literals

/// Formats a byte count with a binary suffix, e.g. "64KiB", "1.5MiB", "17B".
/// Exact multiples print without a fractional part.
std::string format_bytes(ByteCount bytes);

/// Parses strings such as "64K", "64KiB", "1M", "2GiB", "512", "512B".
/// Case-insensitive suffixes; returns std::nullopt on malformed input or
/// overflow.
std::optional<ByteCount> parse_bytes(std::string_view text);

/// Formats a bandwidth (bytes per second) as "123.4 MiB/s".
std::string format_bandwidth(double bytes_per_second);

}  // namespace mha::common
