#include "common/alloc_counter.hpp"

namespace mha::common {

namespace {
bool g_hook_linked = false;
}  // namespace

std::atomic<std::uint64_t>& allocation_counter() {
  static std::atomic<std::uint64_t> counter{0};
  return counter;
}

bool allocation_hook_linked() { return g_hook_linked; }

void mark_allocation_hook_linked() { g_hook_linked = true; }

}  // namespace mha::common
