// Streaming statistics and fixed-bucket histograms used by the replayer's
// bandwidth/server-load reporting and by the overhead analysis bench.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace mha::common {

/// Welford online accumulator: mean/variance/min/max without storing samples.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel-friendly).
  void merge(const OnlineStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact percentile over retained samples.  Suitable for the bounded sample
/// counts produced by the benches (tens of thousands of requests).
class Percentiles {
 public:
  void add(double x) { samples_.push_back(x); }
  /// Pre-sizes for `n` samples so a sized workload's add() calls never
  /// reallocate (request hot path).
  void reserve(std::size_t n) { samples_.reserve(n); }
  std::size_t count() const { return samples_.size(); }

  /// p in [0, 100]; returns 0 when empty.  Uses nearest-rank.
  double percentile(double p) const;

 private:
  mutable std::vector<double> samples_;
};

/// Power-of-two bucketed histogram of byte sizes (1B, 2B, 4B, ... buckets),
/// used to summarise request-size distributions in trace analysis.
class SizeHistogram {
 public:
  void add(std::uint64_t size);
  std::size_t count() const { return total_; }

  /// Multi-line human-readable dump, one bucket per line.
  std::string to_string() const;

  /// Bucket index for a size (floor(log2(size)); size 0 maps to bucket 0).
  static std::size_t bucket_of(std::uint64_t size);

  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<std::uint64_t> buckets_;
  std::size_t total_ = 0;
};

}  // namespace mha::common
