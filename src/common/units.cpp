#include "common/units.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace mha::common {

namespace {

struct Suffix {
  std::string_view name;
  ByteCount factor;
};

// Longest-match-first so "KiB" is matched before "K" would be.
constexpr std::array<Suffix, 10> kSuffixes = {{
    {"KIB", kKiB},
    {"MIB", kMiB},
    {"GIB", kGiB},
    {"KB", kKiB},
    {"MB", kMiB},
    {"GB", kGiB},
    {"K", kKiB},
    {"M", kMiB},
    {"G", kGiB},
    {"B", 1},
}};

}  // namespace

std::string format_bytes(ByteCount bytes) {
  struct Unit {
    ByteCount factor;
    const char* suffix;
  };
  constexpr Unit units[] = {{kGiB, "GiB"}, {kMiB, "MiB"}, {kKiB, "KiB"}};
  for (const auto& u : units) {
    if (bytes >= u.factor) {
      if (bytes % u.factor == 0) {
        return std::to_string(bytes / u.factor) + u.suffix;
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.2f%s",
                    static_cast<double>(bytes) / static_cast<double>(u.factor),
                    u.suffix);
      return buf;
    }
  }
  return std::to_string(bytes) + "B";
}

std::optional<ByteCount> parse_bytes(std::string_view text) {
  // Trim surrounding whitespace.
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  if (text.empty()) return std::nullopt;

  std::uint64_t value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin) return std::nullopt;

  std::string_view rest(ptr, static_cast<std::size_t>(end - ptr));
  if (rest.empty()) return value;

  std::string upper(rest);
  for (char& c : upper) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  for (const auto& s : kSuffixes) {
    if (upper == s.name) {
      if (s.factor != 0 && value > UINT64_MAX / s.factor) return std::nullopt;
      return value * s.factor;
    }
  }
  return std::nullopt;
}

std::string format_bandwidth(double bytes_per_second) {
  char buf[64];
  if (bytes_per_second >= static_cast<double>(kGiB)) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB/s", bytes_per_second / static_cast<double>(kGiB));
  } else if (bytes_per_second >= static_cast<double>(kMiB)) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB/s", bytes_per_second / static_cast<double>(kMiB));
  } else if (bytes_per_second >= static_cast<double>(kKiB)) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB/s", bytes_per_second / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f B/s", bytes_per_second);
  }
  return buf;
}

}  // namespace mha::common
