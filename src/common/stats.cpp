#include "common/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/units.hpp"

namespace mha::common {

void OnlineStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Percentiles::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::sort(samples_.begin(), samples_.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
  return samples_[rank == 0 ? 0 : rank - 1];
}

std::size_t SizeHistogram::bucket_of(std::uint64_t size) {
  if (size <= 1) return 0;
  return static_cast<std::size_t>(std::bit_width(size) - 1);
}

void SizeHistogram::add(std::uint64_t size) {
  const std::size_t b = bucket_of(size);
  if (b >= buckets_.size()) buckets_.resize(b + 1, 0);
  ++buckets_[b];
  ++total_;
}

std::string SizeHistogram::to_string() const {
  std::string out;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    out += "[" + format_bytes(1ULL << b) + ", " + format_bytes(1ULL << (b + 1)) +
           "): " + std::to_string(buckets_[b]) + "\n";
  }
  return out;
}

}  // namespace mha::common
