// Minimal Status / Result<T> error-handling vocabulary (std::expected is not
// available in the targeted toolchain).  Follows the Core Guidelines advice
// of reporting recoverable errors through return values rather than
// exceptions in performance-sensitive library code.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace mha::common {

/// Coarse error taxonomy; the message carries the detail.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIoError,
  kCorruption,
  kFailedPrecondition,
  kUnavailable,
  /// Load was shed before any server was charged (admission gate / retry
  /// tokens); callers should fast-fail or back off, not retry immediately.
  kOverloaded,
};

/// Human-readable name of an error code.
inline const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kAlreadyExists: return "already_exists";
    case ErrorCode::kOutOfRange: return "out_of_range";
    case ErrorCode::kIoError: return "io_error";
    case ErrorCode::kCorruption: return "corruption";
    case ErrorCode::kFailedPrecondition: return "failed_precondition";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kOverloaded: return "overloaded";
  }
  return "unknown";
}

/// A success/error outcome with an optional message.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }
  static Status invalid_argument(std::string m) { return {ErrorCode::kInvalidArgument, std::move(m)}; }
  static Status not_found(std::string m) { return {ErrorCode::kNotFound, std::move(m)}; }
  static Status already_exists(std::string m) { return {ErrorCode::kAlreadyExists, std::move(m)}; }
  static Status out_of_range(std::string m) { return {ErrorCode::kOutOfRange, std::move(m)}; }
  static Status io_error(std::string m) { return {ErrorCode::kIoError, std::move(m)}; }
  static Status corruption(std::string m) { return {ErrorCode::kCorruption, std::move(m)}; }
  static Status failed_precondition(std::string m) { return {ErrorCode::kFailedPrecondition, std::move(m)}; }
  static Status unavailable(std::string m) { return {ErrorCode::kUnavailable, std::move(m)}; }
  static Status overloaded(std::string m) { return {ErrorCode::kOverloaded, std::move(m)}; }

  bool is_ok() const { return code_ == ErrorCode::kOk; }
  explicit operator bool() const { return is_ok(); }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    if (is_ok()) return "ok";
    return std::string(common::to_string(code_)) + ": " + message_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// Either a value of type T or a non-ok Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : state_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(state_).is_ok() && "Result must not hold an ok Status");
  }

  bool is_ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return is_ok(); }

  const T& value() const& {
    assert(is_ok());
    return std::get<T>(state_);
  }
  T& value() & {
    assert(is_ok());
    return std::get<T>(state_);
  }
  T&& take() && {
    assert(is_ok());
    return std::get<T>(std::move(state_));
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Status of the result; ok() when a value is present.
  Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(state_);
  }

  /// Value if present, otherwise `fallback`.
  T value_or(T fallback) const& { return is_ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> state_;
};

}  // namespace mha::common

/// Propagates a non-ok Status from an expression that yields a Status.
#define MHA_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::mha::common::Status mha_status__ = (expr);    \
    if (!mha_status__.is_ok()) return mha_status__; \
  } while (false)

/// Evaluates a Result<T> expression, propagating its Status on error and
/// binding the value to `lhs` on success.
#define MHA_ASSIGN_OR_RETURN(lhs, expr)                       \
  auto mha_result__##__LINE__ = (expr);                       \
  if (!mha_result__##__LINE__.is_ok())                        \
    return mha_result__##__LINE__.status();                   \
  lhs = std::move(mha_result__##__LINE__).take()
