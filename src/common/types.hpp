// Core value types shared by every MHA subsystem.
//
// The whole library talks about parallel-file I/O in terms of a small
// vocabulary: byte offsets/counts inside a logical file, an operation type
// (read or write), a client rank, and a virtual-time instant.  Keeping these
// in one header avoids each subsystem inventing its own aliases.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace mha::common {

/// Logical or physical byte offset within a file.
using Offset = std::uint64_t;

/// A count of bytes (request size, stripe size, file size, ...).
using ByteCount = std::uint64_t;

/// Identifier of a file inside the simulated parallel file system.
using FileId = std::uint32_t;

/// Sentinel for "no file".
inline constexpr FileId kInvalidFileId = static_cast<FileId>(-1);

/// Virtual time in seconds.  The simulator never sleeps; all service and
/// queuing delays advance this clock analytically.
using Seconds = double;

/// Identifier of a tenant job.  Every request belongs to exactly one job;
/// single-tenant code paths leave the default and land in job 0, so the
/// pre-QoS behaviour is "one job owns everything".
using JobId = std::uint32_t;

/// The implicit job single-tenant callers charge against.
inline constexpr JobId kDefaultJob = 0;

/// Kind of a file operation.
enum class OpType : std::uint8_t { kRead = 0, kWrite = 1 };

/// Human-readable name for an operation type ("read"/"write").
inline const char* to_string(OpType op) {
  return op == OpType::kRead ? "read" : "write";
}

/// One application-level file request as seen by the middleware layer.
///
/// `rank` identifies the issuing client process; `issue_time` is the virtual
/// instant the request was posted.  The same struct is used by workload
/// generators, the tracer, the cost model and the replayer.
struct Request {
  int rank = 0;
  OpType op = OpType::kRead;
  Offset offset = 0;
  ByteCount size = 0;
  Seconds issue_time = 0.0;
  /// Owning tenant job (kDefaultJob when no job table is attached).
  JobId job = kDefaultJob;
  /// End-to-end completion deadline (virtual seconds); work still pending
  /// past this instant is abandoned and its sibling charges cancelled.
  /// Infinity — the default — disables enforcement.
  Seconds deadline = std::numeric_limits<double>::infinity();

  friend bool operator==(const Request&, const Request&) = default;
};

/// Storage class of a file server in the hybrid PFS.
enum class ServerKind : std::uint8_t { kHdd = 0, kSsd = 1 };

/// Human-readable name ("HServer"/"SServer"), matching the paper's terms.
inline const char* to_string(ServerKind k) {
  return k == ServerKind::kHdd ? "HServer" : "SServer";
}

}  // namespace mha::common
