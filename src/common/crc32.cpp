#include "common/crc32.hpp"

#include <array>

namespace mha::common {

namespace {

// Table generated at static-init time from the reflected IEEE polynomial.
constexpr std::uint32_t kPoly = 0xEDB88320u;

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const std::array<std::uint32_t, 256> t = make_table();
  return t;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const auto& t = table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = t[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace mha::common
