#include "workloads/dlpipe.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/rng.hpp"
#include "workloads/ior.hpp"

namespace mha::workloads {

trace::Trace dl_pipeline(const DlPipeConfig& config) {
  assert(config.num_procs > 0 && config.sample_size > 0);
  trace::Trace trace;
  trace.file_name = config.file_name;

  const std::size_t num_samples = static_cast<std::size_t>(
      std::max<common::ByteCount>(config.dataset_size / config.sample_size, 1));
  const std::size_t procs = static_cast<std::size_t>(config.num_procs);
  // Each epoch covers every sample once; partial final steps (samples not a
  // multiple of the worker count) run with fewer readers, like a last
  // ragged minibatch.
  const std::size_t steps = (num_samples + procs - 1) / procs;

  std::vector<std::size_t> order(num_samples);
  std::size_t step_base = 0;
  for (int epoch = 0; epoch < std::max(config.epochs, 1); ++epoch) {
    // Epoch reshuffle: a fresh seeded permutation per epoch, as a DL data
    // loader draws without replacement each pass over the dataset.
    for (std::size_t i = 0; i < num_samples; ++i) order[i] = i;
    common::Rng rng(config.seed + static_cast<std::uint64_t>(epoch));
    rng.shuffle(order);
    for (std::size_t step = 0; step < steps; ++step) {
      const common::Seconds t =
          static_cast<double>(step_base + step) * kIterationSpacing;
      for (std::size_t w = 0; w < procs; ++w) {
        const std::size_t idx = step * procs + w;
        if (idx >= num_samples) break;
        trace::TraceRecord r;
        r.pid = 1000 + static_cast<std::uint32_t>(w);
        r.rank = static_cast<std::int32_t>(w);
        r.fd = 3;
        r.op = common::OpType::kRead;
        r.offset = static_cast<common::Offset>(order[idx]) * config.sample_size;
        r.size = config.sample_size;
        r.t_start = t;
        trace.records.push_back(r);
      }
    }
    step_base += steps;
  }
  return trace;
}

DlPipeConfig dl_resnet(int num_procs, common::ByteCount dataset_size,
                       std::uint64_t seed) {
  DlPipeConfig config;
  config.num_procs = num_procs;
  config.sample_size = 128 * 1024;
  config.dataset_size = dataset_size;
  config.seed = seed;
  return config;
}

DlPipeConfig dl_bert(int num_procs, common::ByteCount dataset_size,
                     std::uint64_t seed) {
  DlPipeConfig config;
  config.num_procs = num_procs;
  config.sample_size = 512 * 1024;
  config.dataset_size = dataset_size;
  config.seed = seed;
  return config;
}

}  // namespace mha::workloads
