#include "workloads/apps.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.hpp"
#include "workloads/ior.hpp"  // kIterationSpacing

namespace mha::workloads {

namespace {

trace::TraceRecord make_record(int rank, common::OpType op, common::Offset offset,
                               common::ByteCount size, std::size_t step) {
  trace::TraceRecord r;
  r.pid = 1000 + static_cast<std::uint32_t>(rank);
  r.rank = rank;
  r.fd = 3;
  r.op = op;
  r.offset = offset;
  r.size = size;
  r.t_start = static_cast<double>(step) * kIterationSpacing;
  return r;
}

}  // namespace

trace::Trace lanl_app2(const LanlConfig& config) {
  assert(config.num_procs > 0 && config.loops > 0);
  trace::Trace trace;
  trace.file_name = config.file_name;

  // Fig. 3's loop body: 16 B, 128 KiB - 16 B, 128 KiB.
  constexpr common::ByteCount kSmall = 16;
  constexpr common::ByteCount kMid = 128 * 1024 - 16;
  constexpr common::ByteCount kLarge = 128 * 1024;
  constexpr common::ByteCount kLoopBytes = kSmall + kMid + kLarge;

  const common::ByteCount per_proc =
      static_cast<common::ByteCount>(config.loops) * kLoopBytes;
  std::size_t step = 0;
  for (int loop = 0; loop < config.loops; ++loop) {
    for (const common::ByteCount size : {kSmall, kMid, kLarge}) {
      for (int rank = 0; rank < config.num_procs; ++rank) {
        const common::Offset base = static_cast<common::Offset>(rank) * per_proc +
                                    static_cast<common::Offset>(loop) * kLoopBytes;
        common::Offset offset = base;
        if (size == kMid) offset += kSmall;
        if (size == kLarge) offset += kSmall + kMid;
        trace.records.push_back(make_record(rank, common::OpType::kWrite, offset, size, step));
      }
      ++step;
    }
  }
  return trace;
}

trace::Trace lu_decomposition(const LuConfig& config) {
  assert(config.num_procs > 0 && config.slabs > 0);
  trace::Trace trace;
  trace.file_name = config.file_name;

  constexpr common::ByteCount kWriteSize = 524544;        // fixed slab write
  constexpr common::ByteCount kReadMin = 6272;
  constexpr common::ByteCount kReadMax = 524544;

  const common::ByteCount per_proc =
      static_cast<common::ByteCount>(config.slabs) * (kReadMax + kWriteSize);
  std::size_t step = 0;
  for (int slab = 0; slab < config.slabs; ++slab) {
    // The panel read grows with the elimination front, sweeping the
    // documented 6272..524544 range across the run.
    const auto frac = static_cast<double>(slab) / std::max(config.slabs - 1, 1);
    auto read_size = static_cast<common::ByteCount>(
        static_cast<double>(kReadMin) +
        frac * static_cast<double>(kReadMax - kReadMin));
    read_size = std::max<common::ByteCount>(read_size / 16 * 16, kReadMin);

    for (int rank = 0; rank < config.num_procs; ++rank) {
      const common::Offset base = static_cast<common::Offset>(rank) * per_proc +
                                  static_cast<common::Offset>(slab) * (kReadMax + kWriteSize);
      trace.records.push_back(make_record(rank, common::OpType::kRead, base, read_size, step));
    }
    ++step;
    for (int rank = 0; rank < config.num_procs; ++rank) {
      const common::Offset base = static_cast<common::Offset>(rank) * per_proc +
                                  static_cast<common::Offset>(slab) * (kReadMax + kWriteSize);
      trace.records.push_back(
          make_record(rank, common::OpType::kWrite, base + kReadMax, kWriteSize, step));
    }
    ++step;
  }
  return trace;
}

trace::Trace sparse_cholesky(const CholeskyConfig& config) {
  assert(config.num_procs > 0 && config.panels > 0);
  trace::Trace trace;
  trace.file_name = config.file_name;
  common::Rng rng(config.seed);

  constexpr common::ByteCount kReadMin = 2;
  constexpr common::ByteCount kReadMax = 4206976;
  constexpr common::ByteCount kWriteMin = 131556;
  constexpr common::ByteCount kWriteMax = 4206976;

  // Log-uniform sampling gives many small requests and a thin tail of large
  // ones, matching "the request size of Cholesky varies more considerably
  // and only has a small number of large requests".
  auto log_uniform = [&](common::ByteCount lo, common::ByteCount hi) {
    const double llo = std::log(static_cast<double>(lo));
    const double lhi = std::log(static_cast<double>(hi));
    const double v = std::exp(llo + rng.next_double() * (lhi - llo));
    return std::clamp<common::ByteCount>(static_cast<common::ByteCount>(v), lo, hi);
  };

  // Panels are stored densely per process; reserve the max footprint so
  // offsets never collide across panels.
  const common::ByteCount panel_slot = kReadMax + kReadMax / 4 + kWriteMax;
  const common::ByteCount per_proc =
      static_cast<common::ByteCount>(config.panels) * panel_slot;

  // "Same I/O requests for each client": draw the per-panel sizes once and
  // replay them from every rank.
  std::size_t step = 0;
  for (int panel = 0; panel < config.panels; ++panel) {
    const common::ByteCount supernode_read = log_uniform(kReadMin, kReadMax);
    const common::ByteCount update_read = log_uniform(kReadMin, kReadMax / 4);
    const common::ByteCount panel_write = log_uniform(kWriteMin, kWriteMax);

    struct PanelOp {
      common::OpType op;
      common::ByteCount size;
      common::Offset local_offset;
    };
    const PanelOp ops[] = {
        {common::OpType::kRead, supernode_read, 0},
        {common::OpType::kRead, update_read, kReadMax},
        {common::OpType::kWrite, panel_write, kReadMax + kReadMax / 4},
    };
    for (const PanelOp& op : ops) {
      for (int rank = 0; rank < config.num_procs; ++rank) {
        const common::Offset base = static_cast<common::Offset>(rank) * per_proc +
                                    static_cast<common::Offset>(panel) * panel_slot;
        trace.records.push_back(make_record(rank, op.op, base + op.local_offset, op.size, step));
      }
      ++step;
    }
  }
  return trace;
}

}  // namespace mha::workloads
