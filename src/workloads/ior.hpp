// IOR-like workload generation (§V-B).
//
// IOR at LLNL issues fixed-size requests from P processes against a shared
// file.  The paper modifies it two ways: mixed request *sizes* (Fig. 7/10:
// each process draws from a size mix at random file locations) and mixed
// process *counts* (Fig. 9: different parts of the file are accessed by
// different numbers of processes).  Both variants are reproduced here as
// trace generators; issue times encode the iteration structure (all requests
// of an iteration are simultaneous) so concurrency annotation recovers the
// intended pattern.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "trace/record.hpp"

namespace mha::workloads {

/// Virtual gap between iterations: large enough that the analysis window
/// never fuses consecutive iterations.
inline constexpr common::Seconds kIterationSpacing = 2.5e-3;

struct IorMixedSizesConfig {
  int num_procs = 32;
  /// The size mix, e.g. {128 KiB, 256 KiB} for the paper's "128+256".
  std::vector<common::ByteCount> request_sizes;
  common::ByteCount file_size = 256ULL * 1024 * 1024;
  common::OpType op = common::OpType::kWrite;
  bool random_offsets = true;
  /// When true each rank draws its own size from the mix every iteration,
  /// so sizes are heterogeneous *within* a synchronous iteration rather than
  /// only across iterations — the within-batch skew a client-side scheduler
  /// can reorder around.  Default keeps the paper's per-iteration cycling.
  bool per_rank_sizes = false;
  std::uint64_t seed = 1;
  std::string file_name = "ior.shared";
};

/// Fig. 7 / Fig. 10 pattern: every iteration each process issues one request
/// whose size cycles deterministically through the mix, at a random
/// size-aligned location.  Enough iterations are generated to cover
/// `file_size` bytes in total.
trace::Trace ior_mixed_sizes(const IorMixedSizesConfig& config);

struct IorMixedProcsConfig {
  /// The process-count mix, e.g. {8, 32} for the paper's "8+32"; each count
  /// accesses its own section of the file.
  std::vector<int> process_counts;
  common::ByteCount request_size = 256ULL * 1024;
  common::ByteCount file_size = 256ULL * 1024 * 1024;
  common::OpType op = common::OpType::kWrite;
  std::uint64_t seed = 1;
  std::string file_name = "ior.shared";
};

/// Fig. 9 pattern: the file is split into one section per process count;
/// section i is accessed by `process_counts[i]` concurrent processes with a
/// fixed request size, sections interleaved across iterations.
trace::Trace ior_mixed_procs(const IorMixedProcsConfig& config);

}  // namespace mha::workloads
