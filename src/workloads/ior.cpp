#include "workloads/ior.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "common/rng.hpp"

namespace mha::workloads {

trace::Trace ior_mixed_sizes(const IorMixedSizesConfig& config) {
  assert(!config.request_sizes.empty() && config.num_procs > 0);
  trace::Trace trace;
  trace.file_name = config.file_name;
  common::Rng rng(config.seed);

  const double mean_size =
      std::accumulate(config.request_sizes.begin(), config.request_sizes.end(), 0.0) /
      static_cast<double>(config.request_sizes.size());
  const auto per_iteration =
      static_cast<common::ByteCount>(mean_size) * static_cast<unsigned>(config.num_procs);
  const std::size_t iterations = std::max<std::size_t>(
      1, static_cast<std::size_t>(config.file_size / std::max<common::ByteCount>(per_iteration, 1)));

  common::Offset sequential_cursor = 0;
  for (std::size_t iter = 0; iter < iterations; ++iter) {
    const common::Seconds t = static_cast<double>(iter) * kIterationSpacing;
    // The size cycles with the iteration so each process sees the full mix
    // interleaved across the run, like the modified IOR of §V-B.  In
    // per_rank_sizes mode each rank instead cycles independently, putting
    // the whole mix inside every iteration.
    const common::ByteCount iter_size =
        config.request_sizes[iter % config.request_sizes.size()];
    for (int rank = 0; rank < config.num_procs; ++rank) {
      const common::ByteCount size =
          config.per_rank_sizes
              ? config.request_sizes[(iter + static_cast<std::size_t>(rank)) %
                                     config.request_sizes.size()]
              : iter_size;
      trace::TraceRecord r;
      r.pid = 1000 + static_cast<std::uint32_t>(rank);
      r.rank = rank;
      r.fd = 3;
      r.op = config.op;
      r.size = size;
      if (config.random_offsets) {
        const common::ByteCount slots = std::max<common::ByteCount>(config.file_size / size, 1);
        r.offset = rng.next_below(slots) * size;
      } else {
        r.offset = sequential_cursor;
        sequential_cursor += size;
      }
      r.t_start = t;
      trace.records.push_back(r);
    }
  }
  return trace;
}

trace::Trace ior_mixed_procs(const IorMixedProcsConfig& config) {
  assert(!config.process_counts.empty());
  trace::Trace trace;
  trace.file_name = config.file_name;
  common::Rng rng(config.seed);

  const std::size_t sections = config.process_counts.size();
  const common::ByteCount section_size = config.file_size / sections;
  const int max_procs = *std::max_element(config.process_counts.begin(),
                                          config.process_counts.end());
  // Keep total volume comparable across configurations: the iteration budget
  // is set by the largest section population.
  const std::size_t iterations = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             section_size / std::max<common::ByteCount>(
                                config.request_size * static_cast<unsigned>(max_procs), 1)));

  std::size_t step = 0;
  for (std::size_t iter = 0; iter < iterations; ++iter) {
    // Sections take turns, so iterations with few processes interleave with
    // iterations with many — the heterogeneous-concurrency pattern.
    for (std::size_t sec = 0; sec < sections; ++sec, ++step) {
      const common::Seconds t = static_cast<double>(step) * kIterationSpacing;
      const int procs = config.process_counts[sec];
      const common::Offset base = static_cast<common::Offset>(sec) * section_size;
      const common::ByteCount slots =
          std::max<common::ByteCount>(section_size / config.request_size, 1);
      for (int rank = 0; rank < procs; ++rank) {
        trace::TraceRecord r;
        r.pid = 1000 + static_cast<std::uint32_t>(rank);
        r.rank = rank;
        r.fd = 3;
        r.op = config.op;
        r.size = config.request_size;
        r.offset = base + rng.next_below(slots) * config.request_size;
        r.t_start = t;
        trace.records.push_back(r);
      }
    }
  }
  return trace;
}

}  // namespace mha::workloads
