// Deep-learning input-pipeline workload generation (bbThemis-style).
//
// A DL training job's I/O is the data-loading half of the pipeline: every
// epoch, each worker reads its share of the dataset's samples in a freshly
// shuffled order — many small random reads against one large shared file,
// repeated for as many epochs as the job trains.  The shuffle makes the
// access pattern adversarial for a sequential layout while the sample size
// is fixed and known, which is exactly the regime the paper's
// heterogeneity-aware placement (hot small regions onto SServers) targets,
// and the per-iteration fan-out of one sample read per worker is the batch
// shape the batched request path coalesces.
//
// Two canned classes mirror the bbThemis evaluation workloads: ResNet-style
// vision training (small ~128 KiB JPEG-ish samples, large sample count) and
// BERT-style language pretraining (larger ~512 KiB sequence shards, fewer
// samples per epoch).
#pragma once

#include <string>

#include "common/types.hpp"
#include "trace/record.hpp"

namespace mha::workloads {

struct DlPipeConfig {
  /// Data-loader worker processes (one MPI rank each).
  int num_procs = 16;
  /// Bytes of one training sample; every read is exactly one sample.
  common::ByteCount sample_size = 128 * 1024;
  /// Total dataset bytes; the sample count is dataset_size / sample_size.
  common::ByteCount dataset_size = 64ULL * 1024 * 1024;
  /// Training epochs; each epoch reads every sample exactly once in a
  /// fresh seeded shuffle (epoch reshuffling).
  int epochs = 2;
  std::uint64_t seed = 1;
  std::string file_name = "dlpipe.dataset";
};

/// Generates the epoch-shuffled read trace: per epoch, a Fisher-Yates
/// permutation of all samples (seeded by `seed` + epoch) is dealt
/// round-robin across the workers, and each training step is one
/// synchronous iteration in which every worker reads its next sample.
/// Read-only — the dataset is written once before training, outside the
/// measured window.
trace::Trace dl_pipeline(const DlPipeConfig& config);

/// ResNet-50-style vision job: 128 KiB samples over the given dataset.
DlPipeConfig dl_resnet(int num_procs, common::ByteCount dataset_size,
                       std::uint64_t seed = 1);

/// BERT-style language job: 512 KiB sequence shards over the given dataset.
DlPipeConfig dl_bert(int num_procs, common::ByteCount dataset_size,
                     std::uint64_t seed = 1);

}  // namespace mha::workloads
