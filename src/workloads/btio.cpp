#include "workloads/btio.hpp"

#include <cassert>
#include <cmath>

#include "workloads/ior.hpp"  // kIterationSpacing

namespace mha::workloads {

namespace {
// The paper's modified BTIO file: class B (1.69 GB) + class C (6.8 GB).
constexpr double kClassBBytes = 1.69e9;
constexpr double kClassCBytes = 6.8e9;
}  // namespace

bool btio_procs_valid(int num_procs) {
  if (num_procs <= 0) return false;
  const int root = static_cast<int>(std::lround(std::sqrt(static_cast<double>(num_procs))));
  return root * root == num_procs;
}

trace::Trace btio(const BtioConfig& config) {
  assert(btio_procs_valid(config.num_procs));
  assert(config.scale > 0 && config.time_steps > 0);
  trace::Trace trace;
  trace.file_name = config.file_name;

  // Per-step, per-process request sizes for the two interleaved classes,
  // 4 KiB aligned like the solver's slice buffers.
  const double denom = static_cast<double>(config.num_procs) *
                       static_cast<double>(config.time_steps) *
                       static_cast<double>(config.scale);
  auto align = [](double bytes) {
    const auto v = static_cast<common::ByteCount>(bytes);
    return std::max<common::ByteCount>(v / 4096 * 4096, 4096);
  };
  const common::ByteCount size_b = align(kClassBBytes / denom);
  const common::ByteCount size_c = align(kClassCBytes / denom);

  common::Offset cursor = 0;
  std::size_t step_index = 0;
  auto emit_phase = [&](common::OpType op, common::Offset& pos) {
    for (int step = 0; step < config.time_steps; ++step, ++step_index) {
      // Interleaved classes: even steps write class-B-sized slices, odd
      // steps class-C-sized ones.
      const common::ByteCount size = (step % 2 == 0) ? size_b : size_c;
      const common::Seconds t = static_cast<double>(step_index) * kIterationSpacing;
      for (int rank = 0; rank < config.num_procs; ++rank) {
        trace::TraceRecord r;
        r.pid = 1000 + static_cast<std::uint32_t>(rank);
        r.rank = rank;
        r.fd = 3;
        r.op = op;
        r.size = size;
        // Each step appends a contiguous stripe of per-process slices, the
        // BTIO "simple" subtype ordering.
        r.offset = pos + static_cast<common::ByteCount>(rank) * size;
        r.t_start = t;
        trace.records.push_back(r);
      }
      pos += static_cast<common::ByteCount>(config.num_procs) * size;
    }
  };

  emit_phase(common::OpType::kWrite, cursor);
  if (config.include_read_phase) {
    common::Offset read_cursor = 0;
    emit_phase(common::OpType::kRead, read_cursor);
  }
  return trace;
}

}  // namespace mha::workloads
