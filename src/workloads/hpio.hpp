// HPIO-like workload generation (§V-B).
//
// HPIO (Northwestern/Sandia) parameterises access by region count, region
// spacing and region size; process p's i-th record sits at
//   offset = i * P * (size + space) + p * (size + space)
// i.e. a strided, interleaved pattern.  The paper modifies it to issue mixed
// region sizes to create heterogeneous patterns: region count 4096, spacing
// 0, sizes {16, 32, 64} KiB.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "trace/record.hpp"

namespace mha::workloads {

struct HpioConfig {
  int num_procs = 16;
  std::size_t region_count = 4096;
  common::ByteCount region_spacing = 0;
  /// Mixed region sizes; record i uses sizes[i % sizes.size()].
  std::vector<common::ByteCount> region_sizes = {16 * 1024, 32 * 1024, 64 * 1024};
  common::OpType op = common::OpType::kWrite;
  std::string file_name = "hpio.dat";
};

trace::Trace hpio(const HpioConfig& config);

}  // namespace mha::workloads
