#include "workloads/hpio.hpp"

#include <algorithm>
#include <cassert>

#include "workloads/ior.hpp"  // kIterationSpacing

namespace mha::workloads {

trace::Trace hpio(const HpioConfig& config) {
  assert(!config.region_sizes.empty() && config.num_procs > 0);
  trace::Trace trace;
  trace.file_name = config.file_name;

  // With mixed sizes the file positions still interleave per record index:
  // stride i is P * (size_i + space); offsets accumulate record by record so
  // each process's slots stay disjoint (HPIO's contiguous-region mode).
  const auto procs = static_cast<common::ByteCount>(config.num_procs);
  common::Offset record_base = 0;
  for (std::size_t i = 0; i < config.region_count; ++i) {
    const common::ByteCount size = config.region_sizes[i % config.region_sizes.size()];
    const common::ByteCount slot = size + config.region_spacing;
    const common::Seconds t = static_cast<double>(i) * kIterationSpacing;
    for (int rank = 0; rank < config.num_procs; ++rank) {
      trace::TraceRecord r;
      r.pid = 1000 + static_cast<std::uint32_t>(rank);
      r.rank = rank;
      r.fd = 3;
      r.op = config.op;
      r.size = size;
      r.offset = record_base + static_cast<common::ByteCount>(rank) * slot;
      r.t_start = t;
      trace.records.push_back(r);
    }
    record_base += procs * slot;
  }
  return trace;
}

}  // namespace mha::workloads
