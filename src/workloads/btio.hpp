// BTIO-like workload generation (§V-C).
//
// NAS BTIO solves block-tridiagonal systems on a square process grid and
// appends each process's solution slices to a shared file every few time
// steps, then reads the file back for verification.  The paper modifies it
// to emulate heterogeneous patterns: the output file carries both the
// class B and the class C footprints (1.69 GB + 6.8 GB) and "each process
// issues file requests at the sizes of those in Class B and C in an
// interleaved fashion".  `scale` shrinks the footprints for simulation
// (shape is preserved: the C requests are ~4x the B requests, the process
// count must be a square, and a read-back phase follows the writes).
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "trace/record.hpp"

namespace mha::workloads {

struct BtioConfig {
  /// Must be a perfect square (9, 16, 25 in the paper).
  int num_procs = 16;
  /// Number of write phases (NAS BTIO: 40 with collective buffering off).
  int time_steps = 40;
  /// Footprint divisor: 1 reproduces the full 1.69+6.8 GB file.
  common::ByteCount scale = 32;
  /// Generate the verification read-back phase too.
  bool include_read_phase = true;
  std::string file_name = "btio.out";
};

/// Returns false when num_procs is not a perfect square (BTIO requirement).
bool btio_procs_valid(int num_procs);

trace::Trace btio(const BtioConfig& config);

}  // namespace mha::workloads
