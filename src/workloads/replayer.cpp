#include "workloads/replayer.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <queue>

#include "common/crc32.hpp"
#include "io/mpi_file.hpp"
#include "io/tracer.hpp"
#include "trace/analysis.hpp"

namespace mha::workloads {

namespace {

int world_size_of(const trace::Trace& trace) {
  int max_rank = 0;
  for (const trace::TraceRecord& r : trace.records) max_rank = std::max(max_rank, r.rank);
  return max_rank + 1;
}

/// Shadow flat file for byte-level verification.
class Shadow {
 public:
  Shadow(bool enabled, common::ByteCount extent, const io::IoInterceptor* interceptor)
      : enabled_(enabled), interceptor_(interceptor) {
    if (!enabled_) return;
    std::vector<std::uint8_t> seed(extent);
    layouts::populate_fill(0, seed.data(), extent);
    store_.write(0, seed);
  }

  void on_write(common::Offset offset, const std::uint8_t* data, common::ByteCount size) {
    if (enabled_) store_.write(offset, data, size);
  }

  common::Status check_read(common::Offset offset, const std::uint8_t* actual,
                            common::ByteCount size) {
    if (!enabled_) return common::Status::ok();
    if (expected_.size() < size) expected_.resize(size);
    store_.read(offset, expected_.data(), size);
    if (std::memcmp(actual, expected_.data(), size) == 0) return common::Status::ok();
    // Bulk compare failed.  The report names everything a debugger wants:
    // the whole-request CRCs (expected vs. actual), the first divergent
    // origin offset, and — when the run was redirected — which region file
    // actually served that byte (via the interceptor's locate()).
    const std::uint8_t* bad = std::mismatch(actual, actual + size, expected_.data()).first;
    const common::Offset at = offset + static_cast<common::ByteCount>(bad - actual);
    char crcs[64];
    std::snprintf(crcs, sizeof(crcs), "expected crc %08x, actual crc %08x",
                  common::crc32(expected_.data(), size), common::crc32(actual, size));
    const std::string where =
        interceptor_ != nullptr ? interceptor_->locate(at) : std::string();
    return common::Status::corruption(
        "replay verification failed over [" + std::to_string(offset) + ", " +
        std::to_string(offset + size) + "): " + crcs + "; first mismatch at origin offset " +
        std::to_string(at) + (where.empty() ? "" : " (served from " + where + ")"));
  }

 private:
  bool enabled_;
  const io::IoInterceptor* interceptor_;
  pfs::ExtentStore store_;
  /// Reused expected-bytes scratch (zero steady-state allocations).
  std::vector<std::uint8_t> expected_;
};

/// Attaches the options' scheduler to the PFS for the replay window and
/// detaches it on every exit path.
class SchedulerGuard {
 public:
  SchedulerGuard(pfs::HybridPfs& pfs, sched::Scheduler* scheduler) : pfs_(pfs) {
    if (scheduler != nullptr) pfs_.set_scheduler(scheduler);
  }
  ~SchedulerGuard() { pfs_.set_scheduler(nullptr); }

 private:
  pfs::HybridPfs& pfs_;
};

/// Same idiom for the fault context.
class FaultGuard {
 public:
  FaultGuard(pfs::HybridPfs& pfs, fault::FaultContext* fault) : pfs_(pfs) {
    if (fault != nullptr) pfs_.set_fault_context(fault);
  }
  ~FaultGuard() { pfs_.set_fault_context(nullptr); }

 private:
  pfs::HybridPfs& pfs_;
};

/// Restores the PFS to the default job on every exit path, so a multi-tenant
/// replay never leaves its last tenant's stamp on later single-tenant work.
class JobGuard {
 public:
  explicit JobGuard(pfs::HybridPfs& pfs) : pfs_(pfs) {}
  ~JobGuard() { pfs_.set_active_job(common::kDefaultJob); }

 private:
  pfs::HybridPfs& pfs_;
};

/// Same idiom for the overload guard; also resets the active deadline so a
/// guarded replay never leaves a stale finite deadline on later work.
class OverloadGuardGuard {
 public:
  OverloadGuardGuard(pfs::HybridPfs& pfs, guard::OverloadGuard* g) : pfs_(pfs) {
    if (g != nullptr) pfs_.set_guard(g);
  }
  ~OverloadGuardGuard() {
    pfs_.set_guard(nullptr);
    pfs_.set_active_deadline(std::numeric_limits<double>::infinity());
  }

 private:
  pfs::HybridPfs& pfs_;
};

}  // namespace

common::Result<ReplayResult> replay(pfs::HybridPfs& pfs,
                                    const layouts::Deployment& deployment,
                                    const trace::Trace& trace,
                                    const ReplayOptions& options) {
  if (trace.records.empty()) return common::Status::invalid_argument("replay: empty trace");
  const int world = world_size_of(trace);
  SchedulerGuard scheduler_guard(pfs, options.scheduler);
  FaultGuard fault_guard(pfs, options.fault_context);
  JobGuard job_guard(pfs);
  OverloadGuardGuard overload_guard(pfs, options.guard);
  if (options.guard != nullptr && options.jobs != nullptr) {
    // Seed the guard's job -> tier map from the registry's priority classes
    // so tiered shedding sees the same classes the fair-share policies do.
    for (std::size_t j = 0; j < options.jobs->size(); ++j) {
      options.guard->set_job_tier(
          static_cast<common::JobId>(j),
          static_cast<std::uint8_t>(options.jobs->priority(static_cast<common::JobId>(j))));
    }
  }
  if (options.scheduler != nullptr) {
    options.scheduler->reserve_metrics(trace.records.size(), pfs.num_servers());
  }
  io::MpiSim mpi(world);
  auto file = io::MpiFile::open(pfs, mpi, deployment.file_name);
  if (!file.is_ok()) return file.status();
  if (deployment.interceptor != nullptr) file->set_interceptor(deployment.interceptor.get());

  io::Tracer tracer(deployment.file_name, options.tracer_overhead);
  if (options.trace_run) file->set_tracer(&tracer);

  // Cached replays route every record through the page cache; the collective
  // batched path is disabled because the cache issues its own bulk
  // dispatches (fills, prefetches, coalesced flushes).
  std::optional<cache::CachedFile> cached;
  if (options.cache != nullptr) cached.emplace(*file, mpi, pfs, *options.cache);
  const bool use_batch = options.batch_requests && !cached.has_value();

  Shadow shadow(options.verify_data, trace::extent_end(trace.records),
                deployment.interceptor.get());
  const bool fill_payload =
      options.verify_data || (pfs.num_servers() > 0 && pfs.data_server(0).stores_data());

  ReplayResult result;
  std::vector<std::uint8_t> buffer;
  buffer.reserve(trace::max_request_size(trace.records));
  common::Percentiles latency_pcts;
  latency_pcts.reserve(trace.records.size());

  if (options.jobs != nullptr) {
    // Pre-count each tenant's requests so the per-tenant percentile stores
    // never grow on the request path (same zero-alloc contract as the
    // aggregate collector above).
    result.tenants.resize(std::max<std::size_t>(options.jobs->size(), 1));
    std::vector<std::size_t> per_job(result.tenants.size(), 0);
    for (const trace::TraceRecord& r : trace.records) {
      ++per_job[options.jobs->job_of_rank(r.rank)];
    }
    for (std::size_t j = 0; j < per_job.size(); ++j) {
      result.tenants[j].percentiles.reserve(per_job[j]);
    }
  }

  auto issue = [&](const trace::TraceRecord& r) -> common::Status {
    buffer.resize(r.size);
    const common::JobId job =
        options.jobs != nullptr ? options.jobs->job_of_rank(r.rank) : common::kDefaultJob;
    if (options.jobs != nullptr) pfs.set_active_job(job);
    const auto tier = options.jobs != nullptr
                          ? static_cast<std::size_t>(options.jobs->priority(job))
                          : static_cast<std::size_t>(qos::PriorityClass::kNormal);
    const common::Seconds allowance = options.goodput_allowance[tier];
    if (options.guard != nullptr) {
      // End-to-end deadline: the rank's clock *now* (request issue, not the
      // trace's nominal t_start) plus its tier's allowance.
      pfs.set_active_deadline(mpi.now(r.rank) + allowance);
    }
    common::Seconds duration = 0.0;
    common::Status failure = common::Status::ok();
    if (r.op == common::OpType::kWrite) {
      if (fill_payload) {
        replay_write_fill(r.offset, buffer.data(), r.size);
      }
      auto op = cached.has_value() ? cached->write_at(r.rank, r.offset, buffer.data(), r.size)
                                   : file->write_at(r.rank, r.offset, buffer.data(), r.size);
      if (op.is_ok()) {
        shadow.on_write(r.offset, buffer.data(), r.size);
        result.bytes_written += r.size;
        duration = op->duration();
      } else {
        failure = op.status();
      }
    } else {
      auto op = cached.has_value() ? cached->read_at(r.rank, r.offset, buffer.data(), r.size)
                                   : file->read_at(r.rank, r.offset, buffer.data(), r.size);
      if (op.is_ok()) {
        MHA_RETURN_IF_ERROR(shadow.check_read(r.offset, buffer.data(), r.size));
        result.bytes_read += r.size;
        duration = op->duration();
      } else {
        failure = op.status();
      }
    }
    ++result.requests;
    if (!failure.is_ok()) {
      // Corruption is never an overload symptom — always fatal.
      if (!options.tolerate_failures ||
          failure.code() == common::ErrorCode::kCorruption) {
        return failure;
      }
      if (failure.code() == common::ErrorCode::kOverloaded) {
        ++result.shed_requests;
        if (!result.tenants.empty()) ++result.tenants[job].shed;
      } else {
        ++result.failed_requests;
        if (!result.tenants.empty()) ++result.tenants[job].failed;
      }
      return common::Status::ok();
    }
    result.request_latency.add(duration);
    latency_pcts.add(duration);
    if (!result.tenants.empty()) result.tenants[job].observe(duration, r.size);
    if (duration <= allowance) {
      result.goodput_bytes += r.size;
      if (!result.tenants.empty()) result.tenants[job].goodput_bytes += r.size;
    } else {
      ++result.late_requests;
      if (!result.tenants.empty()) ++result.tenants[job].late;
    }
    return common::Status::ok();
  };

  // Batched synchronous issue: the current maximal run of same-op,
  // distinct-rank records (in plan order) plus its payload arena.  One
  // arena resize per run; slices address each record's bytes, so the whole
  // run moves through one collective call with zero per-record allocation.
  std::vector<const trace::TraceRecord*> run;
  std::vector<std::uint8_t> rank_used(static_cast<std::size_t>(world), 0);
  std::vector<std::uint8_t> batch_buf;
  std::vector<io::BatchOp> batch_ops;
  io::BatchOutcomeVec batch_outcomes;

  const auto job_of = [&](const trace::TraceRecord& r) {
    return options.jobs != nullptr ? options.jobs->job_of_rank(r.rank)
                                   : common::kDefaultJob;
  };
  const auto allowance_of = [&](common::JobId job) {
    const auto tier = options.jobs != nullptr
                          ? static_cast<std::size_t>(options.jobs->priority(job))
                          : static_cast<std::size_t>(qos::PriorityClass::kNormal);
    return options.goodput_allowance[tier];
  };

  auto flush_run = [&]() -> common::Status {
    common::Status failure = common::Status::ok();
    if (run.size() == 1) {
      // A lone record pays none of the batch assembly; issue() is already
      // the exact serial path.
      failure = issue(*run[0]);
    } else if (!run.empty()) {
      const common::OpType op = run[0]->op;
      common::ByteCount total = 0;
      for (const trace::TraceRecord* r : run) total += r->size;
      if (batch_buf.size() < total) batch_buf.resize(total);
      batch_ops.clear();
      common::ByteCount off = 0;
      for (const trace::TraceRecord* r : run) {
        const common::JobId job = job_of(*r);
        common::Seconds deadline = std::numeric_limits<double>::infinity();
        if (options.guard != nullptr) {
          // Same stamp as issue(): the rank's clock now + the tier allowance.
          deadline = mpi.now(r->rank) + allowance_of(job);
        }
        std::uint8_t* slice = batch_buf.data() + off;
        if (op == common::OpType::kWrite && fill_payload) {
          replay_write_fill(r->offset, slice, r->size);
        }
        batch_ops.push_back(io::BatchOp{
            r->rank, r->offset, r->size, op == common::OpType::kRead ? slice : nullptr,
            op == common::OpType::kWrite ? slice : nullptr, job, deadline});
        off += r->size;
      }
      const std::span<const io::BatchOp> ops(batch_ops.data(), batch_ops.size());
      if (op == common::OpType::kRead) {
        file->read_at_batch(ops, batch_outcomes);
      } else {
        file->write_at_batch(ops, batch_outcomes);
      }
      // Per-record bookkeeping, replicating issue()'s accounting exactly.
      off = 0;
      for (std::size_t i = 0; i < run.size() && failure.is_ok(); ++i) {
        const trace::TraceRecord* r = run[i];
        const std::uint8_t* slice = batch_buf.data() + off;
        off += r->size;
        const common::JobId job = job_of(*r);
        const common::Seconds allowance = allowance_of(job);
        const io::BatchOpOutcome& oc = batch_outcomes[i];
        ++result.requests;
        if (!oc.status.is_ok()) {
          if (!options.tolerate_failures ||
              oc.status.code() == common::ErrorCode::kCorruption) {
            failure = oc.status;
            break;
          }
          if (oc.status.code() == common::ErrorCode::kOverloaded) {
            ++result.shed_requests;
            if (!result.tenants.empty()) ++result.tenants[job].shed;
          } else {
            ++result.failed_requests;
            if (!result.tenants.empty()) ++result.tenants[job].failed;
          }
          continue;
        }
        if (op == common::OpType::kWrite) {
          shadow.on_write(r->offset, slice, r->size);
          result.bytes_written += r->size;
        } else {
          failure = shadow.check_read(r->offset, slice, r->size);
          if (!failure.is_ok()) break;
          result.bytes_read += r->size;
        }
        const common::Seconds duration = oc.op.duration();
        result.request_latency.add(duration);
        latency_pcts.add(duration);
        if (!result.tenants.empty()) result.tenants[job].observe(duration, r->size);
        if (duration <= allowance) {
          result.goodput_bytes += r->size;
          if (!result.tenants.empty()) result.tenants[job].goodput_bytes += r->size;
        } else {
          ++result.late_requests;
          if (!result.tenants.empty()) ++result.tenants[job].late;
        }
      }
    }
    for (const trace::TraceRecord* r : run) {
      rank_used[static_cast<std::size_t>(r->rank)] = 0;
    }
    run.clear();
    return failure;
  };

  if (options.mode == ReplayMode::kSynchronous) {
    // Iterations are groups of records sharing a t_start; a barrier closes
    // each iteration, so arrivals inside one iteration are simultaneous —
    // exactly the congestion window the scheduler's plan() may reorder.
    std::map<common::Seconds, std::vector<const trace::TraceRecord*>> iterations;
    for (const trace::TraceRecord& r : trace.records) {
      iterations[r.t_start].push_back(&r);
    }
    for (const auto& [t, group] : iterations) {
      std::vector<std::size_t> order(group.size());
      for (std::size_t i = 0; i < group.size(); ++i) order[i] = i;
      if (options.scheduler != nullptr) {
        std::vector<common::Request> batch;
        batch.reserve(group.size());
        for (const trace::TraceRecord* r : group) {
          const common::JobId job = options.jobs != nullptr
                                        ? options.jobs->job_of_rank(r->rank)
                                        : common::kDefaultJob;
          const auto tier = options.jobs != nullptr
                                ? static_cast<std::size_t>(options.jobs->priority(job))
                                : static_cast<std::size_t>(qos::PriorityClass::kNormal);
          batch.push_back(common::Request{r->rank, r->op, r->offset, r->size,
                                          r->t_start, job,
                                          r->t_start + options.goodput_allowance[tier]});
        }
        order = options.scheduler->plan(batch);
      }
      for (std::size_t i : order) {
        const trace::TraceRecord* r = group[i];
        if (!use_batch) {
          MHA_RETURN_IF_ERROR(issue(*r));
          continue;
        }
        // A run breaks on an op-type change or a rank repeat: the second
        // request of one rank must see its first one's completion (the
        // closed-loop contract), so it belongs to the next batch.
        if (!run.empty() &&
            (r->op != run[0]->op || rank_used[static_cast<std::size_t>(r->rank)] != 0)) {
          MHA_RETURN_IF_ERROR(flush_run());
        }
        run.push_back(r);
        rank_used[static_cast<std::size_t>(r->rank)] = 1;
      }
      MHA_RETURN_IF_ERROR(flush_run());
      mpi.barrier();
      if (cached.has_value()) {
        // Close-to-open epoch boundary: flush + invalidate at the barrier
        // (no-op in the other consistency modes).
        auto epoch = cached->epoch_close();
        if (!epoch.is_ok()) return epoch.status();
      }
      if (options.on_barrier) options.on_barrier(mpi.max_time());
    }
  } else {
    // Discrete-event free-running replay: per-rank cursors, always dispatch
    // the rank whose clock is earliest so server queues see time order.
    std::vector<std::vector<const trace::TraceRecord*>> per_rank(
        static_cast<std::size_t>(world));
    for (const trace::TraceRecord& r : trace.records) {
      per_rank[static_cast<std::size_t>(r.rank)].push_back(&r);
    }
    using Entry = std::pair<common::Seconds, int>;  // (clock, rank)
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    std::vector<std::size_t> cursor(static_cast<std::size_t>(world), 0);
    for (int rank = 0; rank < world; ++rank) {
      if (!per_rank[static_cast<std::size_t>(rank)].empty()) heap.emplace(0.0, rank);
    }
    while (!heap.empty()) {
      const auto [t, rank] = heap.top();
      heap.pop();
      auto& queue = per_rank[static_cast<std::size_t>(rank)];
      auto& pos = cursor[static_cast<std::size_t>(rank)];
      MHA_RETURN_IF_ERROR(issue(*queue[pos]));
      if (++pos < queue.size()) heap.emplace(mpi.now(rank), rank);
    }
  }

  result.makespan = mpi.max_time();
  if (cached.has_value()) {
    // Tail flush: whatever is still dirty leaves as coalesced bulk runs at
    // the replay's end; its completion extends the measured window (the
    // absorbed writes were never free, just deferred).
    auto tail = cached->flush_all(mpi.max_time());
    if (!tail.is_ok()) return tail.status();
    result.makespan = std::max(result.makespan, *tail);
    if (options.cache_metrics != nullptr) *options.cache_metrics = cached->metrics();
  }
  result.aggregate_bandwidth =
      result.makespan > 0.0 ? static_cast<double>(result.bytes_total()) / result.makespan : 0.0;
  result.goodput_bandwidth =
      result.makespan > 0.0 ? static_cast<double>(result.goodput_bytes) / result.makespan : 0.0;
  result.latency_p50 = latency_pcts.percentile(50);
  result.latency_p99 = latency_pcts.percentile(99);
  result.server_stats.reserve(pfs.num_servers());
  for (std::size_t i = 0; i < pfs.num_servers(); ++i) {
    result.server_stats.push_back(pfs.server_stats(i));
  }
  if (options.trace_run) result.captured = tracer.take_trace();
  if (options.scheduler != nullptr) result.scheduler_metrics = options.scheduler->metrics();
  return result;
}

common::Result<ReplayResult> run_scheme(layouts::LayoutScheme& scheme,
                                        const sim::ClusterConfig& config,
                                        const trace::Trace& trace,
                                        const ReplayOptions& options, bool store_data) {
  pfs::PfsOptions pfs_options;
  pfs_options.store_data = store_data || options.verify_data;
  pfs::HybridPfs pfs(config, pfs_options);
  auto deployment = scheme.prepare(pfs, trace);
  if (!deployment.is_ok()) return deployment.status();
  return replay(pfs, *deployment, trace, options);
}

}  // namespace mha::workloads
