// Trace replay against a prepared layout scheme — the measurement harness
// behind every figure.
//
// Replay is closed-loop per rank ("It uses synchronous reads/writes"): a
// rank issues its next request the moment its previous one completes.  Two
// coordination modes:
//   kIndependent  - ranks free-run; a discrete-event loop always dispatches
//                   the globally earliest pending request so server FCFS
//                   queues see arrivals in true time order.
//   kSynchronous  - a barrier after every iteration (all records sharing a
//                   t_start), the collective phase structure of IOR/BTIO.
//
// Bandwidth is bytes moved divided by the virtual makespan, the aggregate
// the paper plots.  Optional byte-level verification replays against a
// shadow flat file and fails on any mismatch — the end-to-end data-integrity
// oracle for redirection.
#pragma once

#include <array>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "cache/page_cache.hpp"
#include "common/result.hpp"
#include "common/stats.hpp"
#include "guard/guard.hpp"
#include "layouts/scheme.hpp"
#include "pfs/file_system.hpp"
#include "qos/job.hpp"
#include "qos/metrics.hpp"
#include "sched/scheduler.hpp"
#include "sim/server_sim.hpp"
#include "trace/record.hpp"

namespace mha::workloads {

enum class ReplayMode { kIndependent, kSynchronous };

struct ReplayOptions {
  ReplayMode mode = ReplayMode::kSynchronous;
  /// Byte-level verification against a shadow copy (needs a data-storing
  /// PFS; costs memory proportional to the trace's extent).
  bool verify_data = false;
  /// Attach a tracing collector with this per-op overhead (profiling runs).
  bool trace_run = false;
  common::Seconds tracer_overhead = 0.0;
  /// Client-side I/O scheduler to dispatch through (borrowed; null keeps
  /// the direct FCFS path).  In synchronous mode each iteration's requests
  /// are additionally ordered by the scheduler's plan() — the congestion
  /// window — so any scheme x scheduler combination is replayable.
  sched::Scheduler* scheduler = nullptr;
  /// Fault context to replay under (borrowed; null replays fault-free).
  /// While attached the PFS runs its degraded-mode dispatch path: injected
  /// crashes/brownouts/transients hit this replay's requests and every
  /// retry/degraded-read/redo decision lands in the context's FaultMetrics.
  fault::FaultContext* fault_context = nullptr;
  /// Tenant registry (borrowed; null replays single-tenant).  When attached,
  /// every request is stamped with its issuing rank's job before dispatch —
  /// so per-job rows accumulate in the ServerSims and fair-share schedulers
  /// see real job identities — and the result carries per-tenant latency
  /// collectors alongside the aggregate ones.
  const qos::JobTable* jobs = nullptr;
  /// Overload guard to dispatch under (borrowed; null replays unguarded).
  /// While attached, the PFS consults its admission gate/breakers/retry
  /// tokens, each request is stamped with issue + its tier's
  /// goodput_allowance as the end-to-end deadline, and job -> tier mappings
  /// are seeded from the job table's priority classes.
  guard::OverloadGuard* guard = nullptr;
  /// Per-priority-tier completion allowance in seconds from issue (index =
  /// qos::PriorityClass value: batch, normal, interactive).  A request
  /// finishing later is *late*: its bytes count as throughput but not
  /// goodput.  Infinite entries (the default) disable the accounting.
  std::array<common::Seconds, 3> goodput_allowance = {
      std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::infinity()};
  /// Keep replaying through per-request failures: shed (kOverloaded) and
  /// failed (deadline/budget/unavailable) requests are counted instead of
  /// aborting the replay.  Data corruption still aborts — a wrong byte is
  /// never an overload symptom.
  bool tolerate_failures = false;
  /// Synchronous mode only: issue each iteration's plan-ordered records
  /// through the collective batched path (MpiFile::read_at_batch /
  /// write_at_batch) — maximal same-op runs over distinct ranks become one
  /// batch each, translated under a shared DRT cursor and dispatched once
  /// per server at the PFS.  Semantically identical to per-record issue
  /// (the batched-vs-serial equivalence suite pins stored bytes, per-job
  /// server stats and Statuses); disable to A/B the serial path.
  /// Independent mode always issues per record.
  bool batch_requests = true;
  /// Client-side page cache to replay through (borrowed; null replays
  /// uncached).  All requests route through a cache::CachedFile wrapped
  /// around the replay's MpiFile: hits and absorbed writes cost the cache's
  /// hit_overhead instead of the full translate+dispatch round trip, dirty
  /// pages flush as coalesced bulk runs (attributed to the dirtying job),
  /// and a final sync flush closes the replay — its completion extends the
  /// makespan.  Close-to-open mode flushes + invalidates at every
  /// synchronous barrier.  Caching disables the collective batched path
  /// (the cache issues its own bulk dispatches instead).
  const cache::CacheConfig* cache = nullptr;
  /// When caching, the cache's counters are copied here at replay end
  /// (borrowed; may be null).
  cache::CacheMetrics* cache_metrics = nullptr;
  /// Synchronous mode only: invoked after every iteration barrier (and the
  /// close-to-open epoch flush, when caching) with the synced virtual time.
  /// The world is quiescent at that instant — no request is in flight — so
  /// the hook may mutate it: the repair bench kills a server here and pumps
  /// the rebuilder between iterations.
  std::function<void(common::Seconds)> on_barrier;
};

struct ReplayResult {
  common::Seconds makespan = 0.0;
  common::ByteCount bytes_read = 0;
  common::ByteCount bytes_written = 0;
  std::size_t requests = 0;
  /// bytes_total / makespan.
  double aggregate_bandwidth = 0.0;
  /// Per-server stats snapshot over the replay window.
  std::vector<sim::ServerStats> server_stats;
  /// Captured trace when options.trace_run was set.
  trace::Trace captured;
  /// Per-request latency over the replay (every rank's op duration).
  common::OnlineStats request_latency;
  double latency_p50 = 0.0;
  double latency_p99 = 0.0;
  /// Snapshot of the scheduler's decision counters when one was attached.
  sched::SchedulerMetrics scheduler_metrics;
  /// Per-tenant latency/byte collectors, indexed by JobId; filled only when
  /// options.jobs was attached (size == jobs->size()).
  std::vector<qos::TenantLatency> tenants;
  /// Goodput: bytes of requests that completed within their tier's
  /// allowance (== bytes_total when no allowance was configured).
  common::ByteCount goodput_bytes = 0;
  /// goodput_bytes / makespan.
  double goodput_bandwidth = 0.0;
  /// Requests the admission gate / retry-token budget shed (kOverloaded).
  std::size_t shed_requests = 0;
  /// Requests that failed for any other tolerated reason (deadline miss,
  /// retry budget, offline past budget).
  std::size_t failed_requests = 0;
  /// Requests that completed but blew their tier's allowance.
  std::size_t late_requests = 0;

  common::ByteCount bytes_total() const { return bytes_read + bytes_written; }
};

/// Replays `trace` through `deployment` on `pfs`.  The PFS must have been
/// prepared by the deployment's scheme (stats clean).
common::Result<ReplayResult> replay(pfs::HybridPfs& pfs,
                                    const layouts::Deployment& deployment,
                                    const trace::Trace& trace,
                                    const ReplayOptions& options = {});

/// Convenience: prepare `scheme` on a fresh PFS with `config` and replay.
/// `store_data` toggles byte-accurate mode (see pfs::PfsOptions).
common::Result<ReplayResult> run_scheme(layouts::LayoutScheme& scheme,
                                        const sim::ClusterConfig& config,
                                        const trace::Trace& trace,
                                        const ReplayOptions& options = {},
                                        bool store_data = false);

/// Deterministic payload byte for a write at `offset` during replay.
inline std::uint8_t replay_write_byte(common::Offset offset) {
  return static_cast<std::uint8_t>(layouts::populate_byte(offset) ^ 0xA5);
}

/// Block form of replay_write_byte (see layouts::populate_fill).
inline void replay_write_fill(common::Offset start, std::uint8_t* out,
                              common::ByteCount n) {
  constexpr std::uint64_t kStep = 1315423911ULL;
  std::uint64_t acc = start * kStep;
  for (common::ByteCount i = 0; i < n; ++i, acc += kStep) {
    out[i] = static_cast<std::uint8_t>(acc >> 17) ^ std::uint8_t{0xA5};
  }
}

}  // namespace mha::workloads
