// Synthetic traces of the paper's three real applications (§V-D), rebuilt
// from the published per-loop patterns.  The originals are LANL/UMD traces
// that are no longer distributable, so these generators reproduce the
// request-size/op/concurrency distributions the paper documents — the only
// properties the layout schemes consume (substitution recorded in
// DESIGN.md).
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "trace/record.hpp"

namespace mha::workloads {

struct LanlConfig {
  int num_procs = 8;  ///< the paper replays with 8 computing nodes
  int loops = 256;
  std::string file_name = "lanl.app2";
};

/// LANL anonymous App2 (Fig. 3): each loop issues three writes per process —
/// 16 B, then 128 KiB - 16 B, then 128 KiB — so identical sizes recur across
/// the file but never adjacently, the motivating pattern for reordering.
trace::Trace lanl_app2(const LanlConfig& config);

struct LuConfig {
  int num_procs = 8;    ///< "8 files, one per process"
  int slabs = 128;      ///< 8192x8192 doubles at 64-column slabs = 128
  std::string file_name = "lu.matrix";
};

/// Out-of-core dense LU decomposition: synchronous I/O, fixed 524544 B
/// writes, reads ranging 6272..524544 B (panel updates growing with the
/// elimination front).  File-per-process is folded into per-process sections
/// of one shared file (substitution: the layout scheme sees the same
/// size/offset/concurrency stream).
trace::Trace lu_decomposition(const LuConfig& config);

struct CholeskyConfig {
  int num_procs = 8;  ///< "8 clients, same I/O requests for each client"
  int panels = 192;
  std::uint64_t seed = 7;
  std::string file_name = "cholesky.matrix";
};

/// Sparse Cholesky factorisation: panel-structured synchronous I/O; read
/// sizes span 2 B .. 4206976 B and writes 131556 B .. 4206976 B, with only a
/// small share of large requests (the paper notes the wide size variance).
trace::Trace sparse_cholesky(const CholeskyConfig& config);

}  // namespace mha::workloads
