#include "trace/analysis.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <unordered_set>

#include "common/units.hpp"

namespace mha::trace {

std::vector<std::uint32_t> request_concurrency(const std::vector<TraceRecord>& records,
                                               const AnalysisOptions& options) {
  const std::size_t n = records.size();
  std::vector<std::uint32_t> concurrency(n, 1);
  if (n == 0) return concurrency;

  // Effective activity interval of record i: [start_i, end_i] where end is
  // t_start + max(duration, window).  Two records are simultaneous when the
  // intervals intersect.  Sweep in start order with a running active set.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return records[a].t_start < records[b].t_start;
  });

  auto end_of = [&](std::size_t i) {
    return records[i].t_start + std::max(records[i].duration, options.window);
  };

  // Active records sorted by end time; head = soonest to expire.
  std::vector<std::size_t> active;  // indices into `records`
  for (std::size_t oi = 0; oi < n; ++oi) {
    const std::size_t i = order[oi];
    const common::Seconds start = records[i].t_start;
    // Expire intervals ending strictly before this start.
    active.erase(std::remove_if(active.begin(), active.end(),
                                [&](std::size_t j) { return end_of(j) < start; }),
                 active.end());
    // Everything still active overlaps record i.
    for (std::size_t j : active) {
      ++concurrency[j];
      ++concurrency[i];
    }
    active.push_back(i);
  }
  return concurrency;
}

TraceSummary summarize(const std::vector<TraceRecord>& records) {
  TraceSummary s;
  s.num_requests = records.size();
  if (records.empty()) return s;
  s.min_size = std::numeric_limits<common::ByteCount>::max();
  std::unordered_set<common::ByteCount> sizes;
  double total = 0.0;
  for (const TraceRecord& r : records) {
    if (r.op == common::OpType::kRead) {
      ++s.num_reads;
      s.bytes_read += r.size;
    } else {
      ++s.num_writes;
      s.bytes_written += r.size;
    }
    s.min_size = std::min(s.min_size, r.size);
    s.max_size = std::max(s.max_size, r.size);
    total += static_cast<double>(r.size);
    sizes.insert(r.size);
    s.extent_end = std::max(s.extent_end, r.offset + r.size);
    s.size_histogram.add(r.size);
  }
  s.mean_size = total / static_cast<double>(records.size());
  s.distinct_sizes = sizes.size();
  return s;
}

std::string TraceSummary::to_string() const {
  std::string out;
  out += "requests: " + std::to_string(num_requests) + " (" + std::to_string(num_reads) +
         " reads, " + std::to_string(num_writes) + " writes)\n";
  out += "bytes: " + common::format_bytes(bytes_read) + " read, " +
         common::format_bytes(bytes_written) + " written\n";
  out += "request size: min " + common::format_bytes(min_size) + ", mean " +
         common::format_bytes(static_cast<common::ByteCount>(mean_size)) + ", max " +
         common::format_bytes(max_size) + ", " + std::to_string(distinct_sizes) +
         " distinct\n";
  out += "extent end: " + common::format_bytes(extent_end) + "\n";
  return out;
}

bool is_uniform(const std::vector<TraceRecord>& records) {
  if (records.empty()) return true;
  const common::ByteCount size = records.front().size;
  const common::OpType op = records.front().op;
  for (const TraceRecord& r : records) {
    if (r.size != size || r.op != op) return false;
  }
  return true;
}

}  // namespace mha::trace
