#include "trace/record.hpp"

#include <algorithm>

namespace mha::trace {

void sort_by_offset(std::vector<TraceRecord>& records) {
  std::sort(records.begin(), records.end(), [](const TraceRecord& a, const TraceRecord& b) {
    if (a.offset != b.offset) return a.offset < b.offset;
    if (a.t_start != b.t_start) return a.t_start < b.t_start;
    return a.rank < b.rank;
  });
}

void sort_by_time(std::vector<TraceRecord>& records) {
  std::stable_sort(records.begin(), records.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     if (a.t_start != b.t_start) return a.t_start < b.t_start;
                     return a.rank < b.rank;
                   });
}

common::ByteCount extent_end(const std::vector<TraceRecord>& records) {
  common::ByteCount end = 0;
  for (const TraceRecord& r : records) end = std::max(end, r.offset + r.size);
  return end;
}

common::ByteCount max_request_size(const std::vector<TraceRecord>& records) {
  common::ByteCount m = 0;
  for (const TraceRecord& r : records) m = std::max(m, r.size);
  return m;
}

}  // namespace mha::trace
