// IOSIG-style trace records.
//
// The paper's collector records "process ID, MPI rank, file descriptor,
// request type, file offset, request size, and time stamp information"
// (§III-C) and sorts records by ascending offset before layout analysis.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace mha::trace {

struct TraceRecord {
  std::uint32_t pid = 0;
  std::int32_t rank = 0;
  std::int32_t fd = 0;
  common::OpType op = common::OpType::kRead;
  common::Offset offset = 0;
  common::ByteCount size = 0;
  /// Virtual issue time of the request.
  common::Seconds t_start = 0.0;
  /// Virtual completion - issue (0 when only issue times were captured).
  common::Seconds duration = 0.0;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// A full application trace plus the identity of the traced file.
struct Trace {
  std::string file_name;
  std::vector<TraceRecord> records;

  bool empty() const { return records.empty(); }
  std::size_t size() const { return records.size(); }
};

/// Sorts records by (offset, t_start, rank) — the collector's postprocessing
/// order ("file operation records are sorted in an ascending order in terms
/// of their offsets").
void sort_by_offset(std::vector<TraceRecord>& records);

/// Sorts records by issue time (replay order).
void sort_by_time(std::vector<TraceRecord>& records);

/// One past the highest byte any record touches.
common::ByteCount extent_end(const std::vector<TraceRecord>& records);

/// Largest request size in the trace (the cost model's r_max); 0 if empty.
common::ByteCount max_request_size(const std::vector<TraceRecord>& records);

}  // namespace mha::trace
