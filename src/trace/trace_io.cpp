#include "trace/trace_io.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace mha::trace {

namespace {
constexpr const char* kHeaderPrefix = "# mha-trace v1 file=";
}

std::string to_csv(const Trace& trace) {
  std::string out = kHeaderPrefix + trace.file_name + "\n";
  out += "pid,rank,fd,op,offset,size,t_start,duration\n";
  char line[256];
  for (const TraceRecord& r : trace.records) {
    std::snprintf(line, sizeof(line), "%u,%d,%d,%c,%" PRIu64 ",%" PRIu64 ",%.9f,%.9f\n",
                  r.pid, r.rank, r.fd, r.op == common::OpType::kRead ? 'R' : 'W',
                  r.offset, r.size, r.t_start, r.duration);
    out += line;
  }
  return out;
}

common::Result<Trace> from_csv(const std::string& text) {
  Trace trace;
  std::istringstream in(text);
  std::string line;
  bool saw_header = false;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line.rfind(kHeaderPrefix, 0) == 0) {
      trace.file_name = line.substr(std::strlen(kHeaderPrefix));
      saw_header = true;
      continue;
    }
    if (line[0] == '#' || line.rfind("pid,", 0) == 0) continue;

    TraceRecord r;
    char op_char = 0;
    const int matched = std::sscanf(line.c_str(), "%u,%d,%d,%c,%" SCNu64 ",%" SCNu64 ",%lf,%lf",
                                    &r.pid, &r.rank, &r.fd, &op_char, &r.offset, &r.size,
                                    &r.t_start, &r.duration);
    if (matched != 8 || (op_char != 'R' && op_char != 'W')) {
      return common::Status::corruption("bad trace row at line " + std::to_string(line_no) +
                                        ": " + line);
    }
    r.op = op_char == 'R' ? common::OpType::kRead : common::OpType::kWrite;
    trace.records.push_back(r);
  }
  if (!saw_header) return common::Status::corruption("missing mha-trace header");
  return trace;
}

common::Status write_csv_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return common::Status::io_error("cannot open for write: " + path);
  out << to_csv(trace);
  out.flush();
  if (!out) return common::Status::io_error("short write: " + path);
  return common::Status::ok();
}

common::Result<Trace> read_csv_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return common::Status::io_error("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_csv(buffer.str());
}

common::Result<Trace> merge(const std::vector<Trace>& parts) {
  if (parts.empty()) return common::Status::invalid_argument("nothing to merge");
  Trace merged;
  merged.file_name = parts.front().file_name;
  for (const Trace& part : parts) {
    if (part.file_name != merged.file_name) {
      return common::Status::invalid_argument("cannot merge traces of different files: '" +
                                              part.file_name + "' vs '" + merged.file_name +
                                              "'");
    }
    merged.records.insert(merged.records.end(), part.records.begin(), part.records.end());
  }
  sort_by_time(merged.records);
  return merged;
}

}  // namespace mha::trace
