// Trace persistence: a CSV text form (inspectable, diffable) and the routines
// the pipeline uses to exchange traces between the profiling run and the
// off-line optimiser.
//
// CSV columns: pid,rank,fd,op,offset,size,t_start,duration
// with a leading "# mha-trace v1 file=<name>" header line.
#pragma once

#include <string>
#include <vector>

#include "common/result.hpp"
#include "trace/record.hpp"

namespace mha::trace {

/// Serialises a trace to CSV text.
std::string to_csv(const Trace& trace);

/// Parses CSV text; rejects malformed rows with kCorruption.
common::Result<Trace> from_csv(const std::string& text);

/// Writes the CSV form to `path`.
common::Status write_csv_file(const Trace& trace, const std::string& path);

/// Reads a CSV trace file.
common::Result<Trace> read_csv_file(const std::string& path);

/// Merges several per-rank traces into one (records concatenated; all inputs
/// must name the same file).
common::Result<Trace> merge(const std::vector<Trace>& parts);

}  // namespace mha::trace
