// Off-line trace analysis feeding the MHA reordering phase.
//
// The similarity features of §III-D are request size and request
// concurrency, where "request concurrency refers to the number of requests
// that are simultaneously issued to the file".  Traces captured by the
// middleware carry issue times (and durations when available); concurrency
// is recovered per record by counting temporally overlapping requests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "trace/record.hpp"

namespace mha::trace {

struct AnalysisOptions {
  /// Two records are considered simultaneous when their issue times are
  /// within this window (used when durations were not captured).
  common::Seconds window = 1.0e-3;
};

/// Per-record concurrency values, index-aligned with `records`.
/// A record is always concurrent with itself, so values are >= 1.
std::vector<std::uint32_t> request_concurrency(const std::vector<TraceRecord>& records,
                                               const AnalysisOptions& options = {});

/// Aggregate facts about a trace used by the optimiser and the reports.
struct TraceSummary {
  std::size_t num_requests = 0;
  std::size_t num_reads = 0;
  std::size_t num_writes = 0;
  common::ByteCount bytes_read = 0;
  common::ByteCount bytes_written = 0;
  common::ByteCount min_size = 0;
  common::ByteCount max_size = 0;
  double mean_size = 0.0;
  std::size_t distinct_sizes = 0;
  common::ByteCount extent_end = 0;
  common::SizeHistogram size_histogram;

  std::string to_string() const;
};

TraceSummary summarize(const std::vector<TraceRecord>& records);

/// True when every request has the same size and op mix is one-sided —
/// the "uniform access pattern" case where MHA degrades to HARL.
bool is_uniform(const std::vector<TraceRecord>& records);

}  // namespace mha::trace
