#include "core/rssd.hpp"

#include <algorithm>
#include <limits>

#include "common/units.hpp"
#include "exec/thread_pool.hpp"

namespace mha::core {

std::string StripePair::to_string() const {
  return "<" + common::format_bytes(h) + ", " + common::format_bytes(s) + ">";
}

namespace {

common::ByteCount round_up(common::ByteCount v, common::ByteCount step) {
  return (v + step - 1) / step * step;
}

}  // namespace

common::Result<RssdResult> determine_stripes(const CostModel& model,
                                             const std::vector<ModelRequest>& requests,
                                             const RssdOptions& options) {
  if (requests.empty()) {
    return common::Status::invalid_argument("RSSD: empty region");
  }
  if (options.step == 0) {
    return common::Status::invalid_argument("RSSD: step must be positive");
  }
  const std::size_t m = model.params().num_hservers;
  const std::size_t n = model.params().num_sservers;
  if (n == 0) {
    return common::Status::invalid_argument("RSSD: hybrid PFS needs at least one SServer");
  }

  common::ByteCount r_max = 0;
  double size_sum = 0.0;
  for (const ModelRequest& r : requests) {
    r_max = std::max(r_max, r.size);
    size_sum += static_cast<double>(r.size);
  }
  if (r_max == 0) return common::Status::invalid_argument("RSSD: all requests empty");

  common::ByteCount bound_h;
  common::ByteCount bound_s;
  if (options.adaptive_bounds) {
    // Algorithm 2 lines 3-7.
    if (r_max < (m + n) * options.bound_unit) {
      bound_h = r_max;
      bound_s = r_max;
    } else {
      bound_h = m > 0 ? r_max / m : 0;
      bound_s = r_max / n;
    }
  } else {
    // HARL policy: bound both by the average request size.
    const auto avg = static_cast<common::ByteCount>(size_sum / static_cast<double>(requests.size()));
    bound_h = avg;
    bound_s = avg;
  }
  // Sweep on step multiples; guarantee at least one candidate pair exists
  // even for tiny requests (s must exceed h, so B_s >= step).
  bound_h = round_up(bound_h, options.step);
  bound_s = std::max(round_up(bound_s, options.step), options.step);

  // Group the region into its concurrent batches (deduplicated by shape) so
  // the sweep evaluates exact per-server accumulations at a cost that scales
  // with batch-shape diversity, not request count.
  const BatchedRegion region =
      BatchedRegion::build(requests, /*batch_by_time=*/model.concurrency_aware());

  // One task per h column: the column's inner s loop is pure (const model,
  // const region), so columns can run concurrently.  Reducing the column
  // results in ascending h order with strict < reproduces the serial
  // (h outer, s inner) argmin bit for bit.
  struct Column {
    double best_cost = std::numeric_limits<double>::infinity();
    StripePair best;
    std::size_t pairs_evaluated = 0;
  };
  std::vector<common::ByteCount> h_values;
  for (common::ByteCount h = 0; h <= bound_h; h += options.step) {
    h_values.push_back(h);
    // When bound_h >= bound_s the inner loop dries up for large h; the
    // remaining iterations cannot produce candidates.
    if (h + options.step > bound_s) break;
  }
  const auto sweep_column = [&](std::size_t index) {
    Column column;
    const common::ByteCount h = h_values[index];
    for (common::ByteCount s = h + options.step; s <= bound_s; s += options.step) {
      const double cost = region.cost(model, h, s);
      ++column.pairs_evaluated;
      if (cost < column.best_cost) {
        column.best_cost = cost;
        column.best = StripePair{h, s};
      }
    }
    return column;
  };

  exec::ThreadPool& pool = exec::default_pool();
  const std::size_t candidate_estimate = h_values.size() * (bound_s / options.step);
  std::vector<Column> columns;
  if (options.parallel && pool.thread_count() > 1 && h_values.size() > 1 &&
      candidate_estimate >= options.min_parallel_candidates) {
    columns = pool.parallel_map(h_values.size(), sweep_column);
  } else {
    columns.reserve(h_values.size());
    for (std::size_t i = 0; i < h_values.size(); ++i) columns.push_back(sweep_column(i));
  }

  RssdResult result;
  result.best_cost = std::numeric_limits<double>::infinity();
  for (const Column& column : columns) {
    result.pairs_evaluated += column.pairs_evaluated;
    if (column.best_cost < result.best_cost) {
      result.best_cost = column.best_cost;
      result.best = column.best;
    }
  }
  if (result.pairs_evaluated == 0) {
    return common::Status::failed_precondition("RSSD: no candidate stripe pair in bounds");
  }
  return result;
}

}  // namespace mha::core
