// The I/O Redirector of the redirection phase (§III-G, §IV-B).
//
// Implements io::IoInterceptor: on every MPI_File_read/write the logical
// extent is split through the DRT into region-file segments (passthrough for
// uncovered bytes) and forwarded.  Region names are resolved to file ids
// once at create() into a flat table indexed by the DRT's interned RegionId
// — the paper keeps "a list to maintain frequently accessed reordering
// entries" in memory for the same reason — so the per-request path performs
// no string hashing and no heap allocation.  Adjacent segments that target
// the same file contiguously are coalesced before forwarding, so one server
// round trip covers what the table split only for bookkeeping reasons.  A
// per-request lookup overhead is charged once per translation so Fig. 14's
// redirection-cost experiment is reproducible; identity_table() builds the
// DRT that redirects a file onto itself, which is exactly the paper's
// methodology ("we intentionally do not make data reordering so that I/O
// requests are redirected to the original I/O system").
#pragma once

#include <string>
#include <vector>

#include "common/result.hpp"
#include "core/drt.hpp"
#include "io/mpi_file.hpp"
#include "pfs/file_system.hpp"

namespace mha::core {

class Redirector : public io::IoInterceptor {
 public:
  /// `original` is the file the DRT describes; `lookup_overhead` is the
  /// virtual cost of one DRT consultation (hash lookup + split).
  static common::Result<Redirector> create(pfs::HybridPfs& pfs, Drt drt,
                                           common::Seconds lookup_overhead = 2.0e-6);

  using io::IoInterceptor::translate;
  void translate(common::Offset offset, common::ByteCount size,
                 io::SegmentList& out) override;

  /// Batched-path variant: rides the caller's cursor through the DRT so an
  /// ascending-offset batch resolves each lookup from where the previous
  /// one ended (Drt::LookupCursor gallop) instead of a fresh binary search.
  void translate(common::Offset offset, common::ByteCount size, io::SegmentList& out,
                 io::TranslateCursor& cursor) override;

  common::Seconds lookup_overhead() const override { return lookup_overhead_; }

  /// Marks the DRT entries under an intercepted write dirty — their region
  /// bytes now diverge from the original file, which disqualifies the origin
  /// as a scrub repair source for them (see core/scrubber.hpp).
  void note_write(common::Offset offset, common::ByteCount size) override {
    drt_.mark_dirty(offset, size);
  }

  /// "region <name> @<offset>" / "passthrough @<offset>" for one logical
  /// byte (verification-failure diagnostics; cold path).
  std::string locate(common::Offset offset) const override;

  const Drt& drt() const { return drt_; }
  /// Mutable table access for the rebuilder's retarget/replica updates; call
  /// refresh() afterwards so the resolved file-id table catches up.
  Drt& mutable_drt() { return drt_; }
  std::size_t translations() const { return translations_; }

  /// Re-resolves the region-file table against `pfs` after the DRT's
  /// interned names changed (rebuild retarget, new replicas) and re-registers
  /// every replica pair with the pfs failover table.  Existing RegionIds keep
  /// their slots, so in-flight segments stay valid.
  common::Status refresh(pfs::HybridPfs& pfs);

  /// Resolved file id for an interned region (bench/test introspection).
  common::FileId region_file(RegionId region) const { return region_files_[region]; }

  /// Builds an identity DRT: [0, length) of `file` maps to itself in
  /// `entry_size` pieces (overhead benchmarking).
  static Drt identity_table(const std::string& file, common::ByteCount length,
                            common::ByteCount entry_size);

 private:
  Redirector(Drt drt, common::FileId original, common::Seconds lookup_overhead)
      : drt_(std::move(drt)), original_(original), lookup_overhead_(lookup_overhead) {}

  /// Shared tail of both translate overloads: resolve scratch_'s DRT
  /// segments to file ids and coalesce contiguous same-file pieces.
  void emit_segments(io::SegmentList& out) const;

  Drt drt_;
  common::FileId original_;
  common::Seconds lookup_overhead_;
  /// RegionId -> FileId, built once at create(); replaces the old
  /// string-keyed id cache on the hot path.
  std::vector<common::FileId> region_files_;
  /// Per-instance DRT scratch, reused across translations (single-client;
  /// see the thread-safety rule in core/drt.hpp).
  Drt::SegmentVec scratch_;
  std::size_t translations_ = 0;
};

}  // namespace mha::core
