// Online (dynamic) MHA — the paper's stated future work: "we also intend to
// develop dynamic approaches to further improve the performance of those
// applications with unpredictable patterns" (§VII).
//
// OnlineMha is an adaptive middleware controller that wraps one file.  It
// serves as the runtime IoInterceptor (delegating to the current
// Redirector), continuously observes the request stream, and summarises each
// observation window into a pattern signature (request-size distribution +
// op mix).  When the signature drifts beyond a threshold from the one the
// current layout was planned for, it re-runs the off-line MHA phases on the
// fresh window and swaps the deployment:
//
//   1. roll back: copy all reordered data from the current region files to
//      the original file and drop the regions (keeps the fold-back simple
//      and the DRT always consistent),
//   2. re-plan on the window trace (grouping + RSSD),
//   3. re-place into fresh, versioned region files,
//   4. atomically swap the redirector.
//
// Adaptation is an explicit step (`maybe_adapt`), called between I/O phases
// — the natural quiescent points of HPC applications.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "core/pipeline.hpp"
#include "io/mpi_file.hpp"
#include "trace/record.hpp"

namespace mha::core {

struct OnlineOptions {
  /// Observation window: adaptation is considered every `window` requests.
  std::size_t window = 2048;
  /// Minimum records before the first plan is built.
  std::size_t min_records = 256;
  /// L1 distance between normalized pattern signatures that triggers
  /// re-optimization (0 = always adapt, 2 = never).
  double drift_threshold = 0.25;
  /// Options for each re-planning pass.
  MhaOptions mha;
};

/// Normalized summary of a window's access pattern: per-power-of-two size
/// bucket shares plus the write fraction.
struct PatternSignature {
  std::vector<double> size_shares;
  double write_fraction = 0.0;

  /// L1 distance in [0, 2 + 1].
  double distance(const PatternSignature& other) const;
  static PatternSignature of(const std::vector<trace::TraceRecord>& records);
};

class OnlineMha : public io::IoInterceptor {
 public:
  /// Wraps `file_name` (must exist on `pfs`).  Until the first adaptation
  /// the interceptor is a passthrough.
  static common::Result<std::unique_ptr<OnlineMha>> create(pfs::HybridPfs& pfs,
                                                           std::string file_name,
                                                           OnlineOptions options = {});

  // --- io::IoInterceptor -------------------------------------------------
  using io::IoInterceptor::translate;
  void translate(common::Offset offset, common::ByteCount size,
                 io::SegmentList& out) override;
  common::Seconds lookup_overhead() const override;
  void note_write(common::Offset offset, common::ByteCount size) override {
    if (redirector_ != nullptr) redirector_->note_write(offset, size);
  }
  std::string locate(common::Offset offset) const override {
    return redirector_ != nullptr ? redirector_->locate(offset) : std::string();
  }

  // --- observation & adaptation ------------------------------------------
  /// Records one observed request (typically wired to the tracer).
  void observe(const trace::TraceRecord& record);

  /// If a full window has accumulated and the pattern drifted, re-plans and
  /// re-places.  Returns true when an adaptation happened.
  common::Result<bool> maybe_adapt();

  /// Unconditional re-plan on the current window (ignores the threshold).
  common::Status adapt_now();

  std::size_t adaptations() const { return adaptations_; }
  std::size_t observed() const { return observed_; }
  const Redirector* current() const { return redirector_.get(); }

 private:
  OnlineMha(pfs::HybridPfs& pfs, std::string file_name, OnlineOptions options)
      : pfs_(&pfs), file_name_(std::move(file_name)), options_(std::move(options)) {}

  /// Copies every reordered byte back to the original file and removes the
  /// current region files (step 1 above).
  common::Status roll_back();

  pfs::HybridPfs* pfs_;
  std::string file_name_;
  OnlineOptions options_;
  std::vector<trace::TraceRecord> window_;
  std::unique_ptr<Redirector> redirector_;
  PatternSignature planned_for_;
  bool has_plan_ = false;
  common::FileId original_id_ = common::kInvalidFileId;
  std::size_t observed_ = 0;
  std::size_t adaptations_ = 0;
  std::size_t version_ = 0;
};

}  // namespace mha::core
