#include "core/pipeline.hpp"

#include "common/log.hpp"
#include "common/units.hpp"
#include "exec/thread_pool.hpp"

namespace mha::core {

std::string MhaPlan::to_string() const {
  std::string out;
  out += "groups: " + std::to_string(grouping.num_groups) + " (after " +
         std::to_string(grouping.iterations_run) + " refinement iterations)\n";
  for (std::size_t g = 0; g < plan.regions.size(); ++g) {
    const Region& region = plan.regions[g];
    out += "region " + region.name + ": " + common::format_bytes(region.length) + ", " +
           std::to_string(region.record_count) + " requests, stripes " +
           stripe_pairs[g].to_string();
    if (g < region_costs.size()) {
      out += ", model cost " + std::to_string(region_costs[g]) + "s";
    }
    out += "\n";
  }
  out += "DRT entries: " + std::to_string(plan.drt.size()) + " (" +
         common::format_bytes(plan.drt.covered_bytes()) + " covered)\n";
  return out;
}

common::Result<MhaPlan> MhaPipeline::analyze(const sim::ClusterConfig& cluster,
                                             const trace::Trace& trace,
                                             const MhaOptions& options) {
  if (trace.records.empty()) {
    return common::Status::invalid_argument("MHA: empty trace");
  }
  if (trace.file_name.empty()) {
    return common::Status::invalid_argument("MHA: trace does not name a file");
  }

  // Reordering phase, step 1: similarity features + Algorithm 1.
  const auto concurrency = trace::request_concurrency(trace.records, options.analysis);
  std::vector<FeaturePoint> points;
  points.reserve(trace.records.size());
  for (std::size_t i = 0; i < trace.records.size(); ++i) {
    points.push_back(FeaturePoint{static_cast<double>(trace.records[i].size),
                                  static_cast<double>(concurrency[i])});
  }
  MhaPlan result;
  result.grouping = group_requests_auto(points, options.grouping);
  MHA_INFO << "MHA: " << result.grouping.num_groups << " pattern groups over "
           << trace.records.size() << " requests";

  // Reordering phase, step 2: regions + DRT.
  auto plan = build_plan(trace, result.grouping.assignment, concurrency,
                         result.grouping.num_groups, options.reorganizer);
  if (!plan.is_ok()) return plan.status();
  result.plan = std::move(plan).take();

  // Determination phase: RSSD per region.  Regions are independent pure
  // cost-model optimisations, so they fan out on the exec pool; results are
  // collected (and errors reported) in region order, making the plan — and
  // the debug log — identical at any thread count.
  const CostModel model(CostParams::from_cluster(cluster), options.concurrency_aware);
  const std::vector<Region>& regions = result.plan.regions;
  auto rssd_results = exec::default_pool().parallel_map(
      regions.size(), [&](std::size_t g) -> common::Result<RssdResult> {
        return determine_stripes(model, regions[g].requests, options.rssd);
      });
  result.stripe_pairs.reserve(regions.size());
  result.region_costs.reserve(regions.size());
  for (std::size_t g = 0; g < regions.size(); ++g) {
    common::Result<RssdResult>& rssd = rssd_results[g];
    if (!rssd.is_ok()) return rssd.status();
    result.stripe_pairs.push_back(rssd->best);
    result.region_costs.push_back(rssd->best_cost);
    MHA_DEBUG << "MHA: " << regions[g].name << " -> " << rssd->best.to_string() << " ("
              << rssd->pairs_evaluated << " candidates)";
  }
  return result;
}

common::Result<MhaDeployment> MhaPipeline::deploy(pfs::HybridPfs& pfs,
                                                  const trace::Trace& trace,
                                                  const MhaOptions& options) {
  auto plan = analyze(pfs.config(), trace, options);
  if (!plan.is_ok()) return plan.status();

  MhaDeployment deployment;
  deployment.plan = std::move(plan).take();

  // Placement phase, optionally journaled for crash safety.
  fault::MigrationJournal journal;
  ApplyOptions apply_options;
  apply_options.crash_at = options.crash_at;
  apply_options.replicate_hot = options.replicate_hot;
  if (!options.journal_path.empty()) {
    MHA_RETURN_IF_ERROR(journal.open(options.journal_path));
    if (journal.active()) {
      return common::Status::failed_precondition(
          "MHA: journal holds an unresolved migration (phase " +
          std::string(fault::to_string(journal.phase())) +
          "); run core::recover_migration first");
    }
    apply_options.journal = &journal;
  }
  auto placement = Placer::apply(pfs, deployment.plan.plan, deployment.plan.stripe_pairs,
                                 apply_options);
  if (!placement.is_ok()) return placement.status();
  deployment.placement = std::move(placement).take();

  // Stamp the replica column before the DRT is persisted or the redirector
  // resolves file ids: the durable table is the source of truth the runtime
  // failover index is built from.
  for (const auto& [region, replica] : deployment.placement.replica_pairs) {
    MHA_RETURN_IF_ERROR(deployment.plan.plan.drt.set_replica(region, replica));
  }

  // Optional DRT durability (§IV-A).  The initial table is bulk-loaded and
  // synced once; runtime updates would use SyncMode::kEveryWrite.
  if (!options.drt_path.empty()) {
    kv::KvStore store;
    MHA_RETURN_IF_ERROR(store.open(options.drt_path));
    MHA_RETURN_IF_ERROR(deployment.plan.plan.drt.save(store));
    MHA_RETURN_IF_ERROR(store.sync());
    MHA_RETURN_IF_ERROR(store.close());
  }

  // Redirection phase.
  auto redirector = Redirector::create(pfs, deployment.plan.plan.drt,
                                       options.redirect_lookup_overhead);
  if (!redirector.is_ok()) return redirector.status();
  deployment.redirector = std::make_unique<Redirector>(std::move(redirector).take());

  // The migration is committed and the redirector built: the journal has
  // served its purpose.  (A crash before this clear recovers as a no-op
  // roll-forward from kCommitted.)
  if (journal.is_open()) {
    MHA_RETURN_IF_ERROR(journal.clear());
    MHA_RETURN_IF_ERROR(journal.close());
  }
  return deployment;
}

}  // namespace mha::core
