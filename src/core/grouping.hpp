// Similar-access detection: the iterative request grouping of §III-D
// (Algorithm 1).
//
// Each request is a point in a 2-D Euclidean space of (request size, request
// concurrency).  Distances are range-normalised per dimension (Eq. 1) so the
// two features compare on equal footing.  Grouping is k-means with the
// paper's twists: random initial centers drawn from the points, at most
// three refinement iterations, and an upper bound on k "so the number of the
// groups is bounded by the number of the fixed-size region division method".
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace mha::core {

/// A request's similarity features.
struct FeaturePoint {
  double size = 0.0;         ///< request size in bytes
  double concurrency = 0.0;  ///< simultaneous requests on the file
};

/// Range-normalised Euclidean distance (Eq. 1).  `size_range` and
/// `conc_range` are max-min over the whole point set (1 when degenerate).
double feature_distance(const FeaturePoint& a, const FeaturePoint& b, double size_range,
                        double conc_range);

struct GroupingOptions {
  /// Upper bound on k (paper §III-D: bounded to limit metadata overhead).
  std::size_t max_groups = 8;
  /// Algorithm 1 refines "until S_gi is no longer changed or three times at
  /// most".
  int max_iterations = 3;
  std::uint64_t seed = 0x4D48'41ULL;  // deterministic runs
  /// Traces at least this large run the assignment step (nearest-center
  /// search, pure per point) on exec::default_pool().  Center recomputation
  /// stays serial in input order, so sums — and therefore the clustering —
  /// are identical at any thread count.
  std::size_t min_parallel_points = 8192;
};

struct GroupingResult {
  /// Group label per input point, in [0, num_groups).
  std::vector<int> assignment;
  /// Final group centers, index == label.
  std::vector<FeaturePoint> centers;
  std::size_t num_groups = 0;
  int iterations_run = 0;
};

/// Picks k for a point set: the number of occupied (log2-size, concurrency)
/// pattern buckets, clamped to [1, options.max_groups].
std::size_t choose_k(const std::vector<FeaturePoint>& points, const GroupingOptions& options);

/// Algorithm 1.  Empty groups are compacted away, so labels are dense and
/// num_groups <= k.  With points.size() <= k every point gets its own group.
GroupingResult group_requests(const std::vector<FeaturePoint>& points, std::size_t k,
                              const GroupingOptions& options = {});

/// Convenience: choose_k + group_requests.
GroupingResult group_requests_auto(const std::vector<FeaturePoint>& points,
                                   const GroupingOptions& options = {});

}  // namespace mha::core
