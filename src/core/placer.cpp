#include "core/placer.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/log.hpp"
#include "core/cost_model.hpp"

namespace mha::core {

namespace {

common::Status injected_crash(std::string_view point) {
  return common::Status::io_error("injected crash at " + std::string(point));
}

}  // namespace

common::Result<PlacementReport> Placer::apply(pfs::HybridPfs& pfs,
                                              const ReorganizePlan& plan,
                                              const std::vector<StripePair>& stripe_pairs,
                                              const ApplyOptions& options) {
  if (stripe_pairs.size() != plan.regions.size()) {
    return common::Status::invalid_argument("placer: one stripe pair per region required");
  }
  if (options.chunk == 0) return common::Status::invalid_argument("placer: zero chunk");

  auto original = pfs.open(plan.drt.o_file());
  if (!original.is_ok()) return original.status();

  fault::MigrationJournal* journal = options.journal;
  const auto crash_at = [&](std::string_view point) {
    return options.crash_at && options.crash_at(point);
  };

  // Pre-compute the region layouts: they are both the RST rows the region
  // files are created with and (as raw widths) the journal's record of how
  // to re-create a region lost to a crash.
  std::vector<pfs::StripeLayout> layouts;
  layouts.reserve(plan.regions.size());
  for (std::size_t g = 0; g < plan.regions.size(); ++g) {
    auto layout = pfs::StripeLayout::stripe_pair(pfs.num_hservers(), pfs.num_sservers(),
                                                 stripe_pairs[g].h, stripe_pairs[g].s);
    if (!layout.is_ok()) return layout.status();
    layouts.push_back(std::move(layout).take());
  }

  const std::vector<DrtEntry> entries = plan.drt.entries();
  if (journal != nullptr) {
    std::vector<fault::JournalRegion> journal_regions;
    journal_regions.reserve(plan.regions.size());
    for (std::size_t g = 0; g < plan.regions.size(); ++g) {
      journal_regions.push_back(
          fault::JournalRegion{plan.regions[g].name, layouts[g].widths()});
    }
    std::vector<fault::JournalEntry> journal_entries;
    journal_entries.reserve(entries.size());
    for (const DrtEntry& entry : entries) {
      journal_entries.push_back(
          fault::JournalEntry{entry.o_offset, entry.length, entry.r_file, entry.r_offset});
    }
    MHA_RETURN_IF_ERROR(journal->begin(plan.drt.o_file(), std::move(journal_regions),
                                       std::move(journal_entries)));
  }
  if (crash_at("planned")) return injected_crash("planned");

  PlacementReport report;
  std::unordered_map<std::string, common::FileId> region_ids;

  // Create region files with their optimized layouts (RST rows).
  for (std::size_t g = 0; g < plan.regions.size(); ++g) {
    const Region& region = plan.regions[g];
    auto id = pfs.create_file(region.name, layouts[g]);
    if (!id.is_ok()) return id.status();
    region_ids.emplace(region.name, *id);
    ++report.regions_created;
    MHA_DEBUG << "placer: region " << region.name << " layout "
              << stripe_pairs[g].to_string();
  }
  if (journal != nullptr) {
    MHA_RETURN_IF_ERROR(journal->set_phase(fault::JournalPhase::kRegionsCreated));
  }
  if (crash_at("regions-created")) return injected_crash("regions-created");

  if (journal != nullptr) {
    MHA_RETURN_IF_ERROR(journal->set_phase(fault::JournalPhase::kCopying));
  }
  if (crash_at("copying")) return injected_crash("copying");

  // Migrate: copy every DRT entry's bytes original -> region.
  common::Seconds clock = 0.0;
  std::vector<std::uint8_t> buffer;
  for (std::size_t e = 0; e < entries.size(); ++e) {
    const DrtEntry& entry = entries[e];
    auto target = region_ids.find(entry.r_file);
    if (target == region_ids.end()) {
      return common::Status::corruption("placer: DRT names unknown region " + entry.r_file);
    }
    common::ByteCount moved = 0;
    while (moved < entry.length) {
      const common::ByteCount piece =
          std::min<common::ByteCount>(options.chunk, entry.length - moved);
      buffer.resize(piece);
      auto read = pfs.read(*original, entry.o_offset + moved, buffer.data(), piece, clock);
      if (!read.is_ok()) return read.status();
      auto write = pfs.write(target->second, entry.r_offset + moved, buffer.data(), piece,
                             read->completion);
      if (!write.is_ok()) return write.status();
      clock = write->completion;
      moved += piece;
    }
    if (journal != nullptr) {
      MHA_RETURN_IF_ERROR(journal->set_copy_progress(e, entry.length));
    }
    if (crash_at("copied-entry-" + std::to_string(e))) {
      return injected_crash("copied-entry-" + std::to_string(e));
    }
    report.bytes_migrated += entry.length;
  }
  if (journal != nullptr) {
    MHA_RETURN_IF_ERROR(journal->set_phase(fault::JournalPhase::kCopied));
  }
  if (crash_at("copied")) return injected_crash("copied");

  // The atomic switch: after commit() the journaled DRT/RST are the truth
  // (recovery rebuilds the redirector from them); before it they are
  // rolled back or forward depending on the copy phase.
  if (journal != nullptr) {
    MHA_RETURN_IF_ERROR(journal->commit());
  }
  if (crash_at("committed")) return injected_crash("committed");

  // Heterogeneity-aware replication (after the commit on purpose: replicas
  // are derived, re-creatable data — see ApplyOptions::replicate_hot).
  // Every hot region (h > 0 — it has HServer-resident stripes that a dead
  // HDD box would strand) gets a full secondary copy on one SServer, chosen
  // by projected SServer write cost over the replica bytes already assigned
  // there; identical SServers degrade to balance-by-bytes, heterogeneous
  // ones prefer the faster device.
  if (options.replicate_hot) {
    const CostParams params = CostParams::from_cluster(pfs.config());
    std::vector<common::ByteCount> replica_load(pfs.num_sservers(), 0);
    for (std::size_t g = 0; g < plan.regions.size(); ++g) {
      const Region& region = plan.regions[g];
      if (stripe_pairs[g].h == 0 || region.length == 0) continue;
      std::size_t best = 0;
      double best_cost = std::numeric_limits<double>::infinity();
      for (std::size_t s = 0; s < pfs.num_sservers(); ++s) {
        const double cost =
            params.alpha_sw +
            params.beta_sw * static_cast<double>(replica_load[s] + region.length);
        if (cost < best_cost) {
          best = s;
          best_cost = cost;
        }
      }
      const std::size_t server = pfs.num_hservers() + best;
      std::vector<common::ByteCount> widths(pfs.num_servers(), 0);
      widths[server] = pfs::kDefaultStripe;
      auto layout = pfs::StripeLayout::create(std::move(widths));
      if (!layout.is_ok()) return layout.status();
      const std::string replica_name = region.name + ".rep";
      auto replica = pfs.create_file(replica_name, std::move(layout).take());
      if (!replica.is_ok()) return replica.status();
      const common::FileId source = region_ids.at(region.name);
      common::ByteCount copied = 0;
      while (copied < region.length) {
        const common::ByteCount piece =
            std::min<common::ByteCount>(options.chunk, region.length - copied);
        buffer.resize(piece);
        auto read = pfs.read(source, copied, buffer.data(), piece, clock);
        if (!read.is_ok()) return read.status();
        auto write = pfs.write(*replica, copied, buffer.data(), piece, read->completion);
        if (!write.is_ok()) return write.status();
        clock = write->completion;
        copied += piece;
      }
      replica_load[best] += region.length;
      report.replica_pairs.emplace_back(region.name, replica_name);
      ++report.replicas_created;
      report.bytes_replicated += region.length;
      MHA_DEBUG << "placer: replica " << replica_name << " on SServer " << server;
      if (crash_at("replica-" + std::to_string(g))) {
        return injected_crash("replica-" + std::to_string(g));
      }
    }
    if (crash_at("replicated")) return injected_crash("replicated");
  }

  report.migration_time = clock;
  return report;
}

common::Result<PlacementReport> Placer::apply(pfs::HybridPfs& pfs,
                                              const ReorganizePlan& plan,
                                              const std::vector<StripePair>& stripe_pairs,
                                              common::ByteCount chunk) {
  ApplyOptions options;
  options.chunk = chunk;
  return apply(pfs, plan, stripe_pairs, options);
}

}  // namespace mha::core
