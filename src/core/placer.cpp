#include "core/placer.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/log.hpp"

namespace mha::core {

common::Result<PlacementReport> Placer::apply(pfs::HybridPfs& pfs,
                                              const ReorganizePlan& plan,
                                              const std::vector<StripePair>& stripe_pairs,
                                              common::ByteCount chunk) {
  if (stripe_pairs.size() != plan.regions.size()) {
    return common::Status::invalid_argument("placer: one stripe pair per region required");
  }
  if (chunk == 0) return common::Status::invalid_argument("placer: zero chunk");

  auto original = pfs.open(plan.drt.o_file());
  if (!original.is_ok()) return original.status();

  PlacementReport report;
  std::unordered_map<std::string, common::FileId> region_ids;

  // Create region files with their optimized layouts (RST rows).
  for (std::size_t g = 0; g < plan.regions.size(); ++g) {
    const Region& region = plan.regions[g];
    auto layout = pfs::StripeLayout::stripe_pair(pfs.num_hservers(), pfs.num_sservers(),
                                                 stripe_pairs[g].h, stripe_pairs[g].s);
    if (!layout.is_ok()) return layout.status();
    auto id = pfs.create_file(region.name, std::move(layout).take());
    if (!id.is_ok()) return id.status();
    region_ids.emplace(region.name, *id);
    ++report.regions_created;
    MHA_DEBUG << "placer: region " << region.name << " layout "
              << stripe_pairs[g].to_string();
  }

  // Migrate: copy every DRT entry's bytes original -> region.
  common::Seconds clock = 0.0;
  std::vector<std::uint8_t> buffer;
  for (const DrtEntry& entry : plan.drt.entries()) {
    auto target = region_ids.find(entry.r_file);
    if (target == region_ids.end()) {
      return common::Status::corruption("placer: DRT names unknown region " + entry.r_file);
    }
    common::ByteCount moved = 0;
    while (moved < entry.length) {
      const common::ByteCount piece = std::min<common::ByteCount>(chunk, entry.length - moved);
      buffer.resize(piece);
      auto read = pfs.read(*original, entry.o_offset + moved, buffer.data(), piece, clock);
      if (!read.is_ok()) return read.status();
      auto write = pfs.write(target->second, entry.r_offset + moved, buffer.data(), piece,
                             read->completion);
      if (!write.is_ok()) return write.status();
      clock = write->completion;
      moved += piece;
    }
    report.bytes_migrated += entry.length;
  }
  report.migration_time = clock;
  return report;
}

}  // namespace mha::core
