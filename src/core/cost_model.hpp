// The data-access cost model of §III-F (Table I, Eq. 2).
//
// The cost of a file request under a stripe pair <h, s> is the time of its
// slowest sub-request:
//
//   T_R(r,h,s) = max{ p_i*alpha_h  + s_i*(t + beta_h),
//                     p_j*alpha_sr + s_j*(t + beta_sr) | i in H, j in S }
//
// and T_W likewise with the SServer write parameters.  Per Table I, s_i is
// the *accumulated* sub-request size on server i — the bytes the server must
// drain for the whole batch of simultaneously issued requests — and p_i is
// "the involved number of processes" on it.
//
// The paper extends its earlier HARL model "by considering I/O concurrency"
// but does not spell out how p_i and the accumulation are derived; we
// reconstruct them as follows (a documented reproduction decision).  A
// request with measured concurrency c is serviced alongside c-1
// statistically similar requests whose alignments are independent of r's, so
// on a server owning a slot of width w in a cycle of W bytes:
//
//   p_i  = [r touches i] + (c-1) * min(1, (size + w) / W)     (touch count)
//   S_i  = bytes_i(r)    + (c-1) * size * w / W               (batch bytes)
//
// i.e. r contributes its exact phase-dependent geometry and the rest of the
// batch contributes its phase-averaged expectation.  Startup costs amortise
// under load exactly as in the simulator's device model — the first access
// pays alpha, queued ones gamma*alpha, and every message pays the wire
// latency — giving alpha*(1+(p_i-1)*gamma) + p_i*latency.  With c = 1 every
// term collapses to alpha + latency + bytes_i*(t + beta) on the touched
// servers — HARL's model — matching the paper's observation that MHA
// degrades to HARL for uniform patterns.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "sim/cluster_sim.hpp"

namespace mha::core {

/// Table I parameters.  Derived from the simulator's device/network profiles
/// so the analytic model and the measured system share one calibration, as
/// on the paper's testbed.
struct CostParams {
  std::size_t num_hservers = 0;  ///< M
  std::size_t num_sservers = 0;  ///< N
  double t = 0.0;                ///< unit data network transfer time (s/byte)
  double net_latency = 0.0;      ///< folded into per-op startup
  double alpha_h = 0.0;          ///< average storage startup time on HServer
  double beta_h = 0.0;           ///< unit data transfer time on HServer
  double alpha_sr = 0.0;         ///< read startup on SServer
  double beta_sr = 0.0;          ///< unit read transfer on SServer
  double alpha_sw = 0.0;         ///< write startup on SServer
  double beta_sw = 0.0;          ///< unit write transfer on SServer
  double gamma_h = 1.0;          ///< queued-startup discount on HServer
  double gamma_s = 1.0;          ///< queued-startup discount on SServer

  static CostParams from_cluster(const sim::ClusterConfig& config);
};

/// A request as the model sees it: geometry plus measured concurrency and
/// issue time (requests sharing an issue time form one concurrent batch).
struct ModelRequest {
  common::OpType op = common::OpType::kRead;
  common::Offset offset = 0;
  common::ByteCount size = 0;
  std::uint32_t concurrency = 1;
  common::Seconds time = 0.0;
};

class CostModel {
 public:
  /// `concurrency_aware` = false reproduces the HARL-era model (ablation).
  explicit CostModel(CostParams params, bool concurrency_aware = true)
      : params_(params), concurrency_aware_(concurrency_aware) {}

  const CostParams& params() const { return params_; }
  bool concurrency_aware() const { return concurrency_aware_; }

  /// Eq. 2 (reads) / its write analogue: cost of one request under <h, s>.
  /// h may be 0 (SServer-only layout); h and s must not both be 0.
  double request_cost(const ModelRequest& r, common::ByteCount h,
                      common::ByteCount s) const;

  /// Algorithm 2's inner accumulation: sum of request costs over a region.
  double region_cost(const std::vector<ModelRequest>& requests, common::ByteCount h,
                     common::ByteCount s) const;

  /// Requests that are identical to the model once the offset is abstracted
  /// away, with their multiplicity and a bounded sample of the offsets they
  /// actually occur at.  Collapsing a region this way makes the Algorithm 2
  /// sweep O(distinct patterns) instead of O(requests), while the offset
  /// samples keep alignment effects (which depend on the candidate <h, s>)
  /// honest for both packed reordered regions and random workloads.
  struct AggregatedRequest {
    common::OpType op = common::OpType::kRead;
    common::ByteCount size = 0;
    std::uint32_t concurrency = 1;
    std::uint64_t count = 0;
    std::vector<common::Offset> sample_offsets;
  };

  /// Maximum offset samples retained per pattern (strided over the region).
  static constexpr std::size_t kOffsetSamples = 32;

  static std::vector<AggregatedRequest> aggregate(const std::vector<ModelRequest>& requests);

  /// Region cost over aggregated requests: each pattern contributes
  /// count * mean(request_cost at its sampled offsets).
  double aggregated_cost(const std::vector<AggregatedRequest>& patterns,
                         common::ByteCount h, common::ByteCount s) const;

  /// Exact cost of one *concurrent batch* of requests: the per-server
  /// accumulated sub-request sizes S_i and process counts p_i of Eq. 2 are
  /// computed exactly from the batch members' geometry under <h, s>, and the
  /// batch cost is the slowest server's drain time.  This is the strongest
  /// reading of Table I's "accumulated sub-request size on server i" — no
  /// phase-decorrelation assumption — and is what the Algorithm 2 sweep
  /// uses via BatchedRegion.
  double batch_cost(const std::vector<const ModelRequest*>& batch, common::ByteCount h,
                    common::ByteCount s) const;

  /// Exact bytes of [offset, offset+size) that fall into the round-robin
  /// slot [slot_start, slot_start+width) of a cycle of `cycle` bytes.
  /// Exposed for tests.
  static common::ByteCount bytes_on_slot(common::Offset offset, common::ByteCount size,
                                         common::ByteCount slot_start,
                                         common::ByteCount width,
                                         common::ByteCount cycle);

 private:
  CostParams params_;
  bool concurrency_aware_;
};

/// A region's requests grouped into their concurrent batches (by issue
/// time), with structurally identical batches deduplicated: only
/// `max_samples` representative batches per shape are costed and the result
/// is scaled by the shape's multiplicity.  Keeps the Algorithm 2 sweep fast
/// without assuming anything about phase alignment.
class BatchedRegion {
 public:
  /// `batch_by_time` = false puts every request in its own batch — the
  /// non-concurrency-aware (HARL-era) ablation.
  static BatchedRegion build(const std::vector<ModelRequest>& requests,
                             bool batch_by_time = true, std::size_t max_samples = 8);

  /// Sum over batches of batch_cost, with shape-level sampling.
  double cost(const CostModel& model, common::ByteCount h, common::ByteCount s) const;

  std::size_t num_batches() const { return total_batches_; }
  std::size_t num_shapes() const { return shapes_.size(); }

 private:
  struct Shape {
    /// Representative batches (pointers into requests_).
    std::vector<std::vector<const ModelRequest*>> samples;
    std::size_t count = 0;  ///< how many batches share this shape
  };

  std::vector<ModelRequest> requests_;  ///< stable storage for pointers
  std::vector<Shape> shapes_;
  std::size_t total_batches_ = 0;
};

}  // namespace mha::core
