#include "core/cost_model.hpp"

#include <algorithm>
#include <cassert>

namespace mha::core {

CostParams CostParams::from_cluster(const sim::ClusterConfig& config) {
  CostParams p;
  p.num_hservers = config.num_hservers;
  p.num_sservers = config.num_sservers;
  p.t = config.network.per_byte;
  p.net_latency = config.network.latency;
  // Table I gives the HServer a single (alpha_h, beta_h); average the
  // profile's read/write sides.  Network latency stays separate: the device
  // startup amortises under load (gamma) but every message pays the full
  // wire latency, exactly as the simulator charges it.
  p.alpha_h = 0.5 * (config.hdd.startup_read + config.hdd.startup_write);
  p.beta_h = 0.5 * (config.hdd.per_byte_read + config.hdd.per_byte_write);
  p.alpha_sr = config.ssd.startup_read;
  p.beta_sr = config.ssd.per_byte_read;
  p.alpha_sw = config.ssd.startup_write;
  p.beta_sw = config.ssd.per_byte_write;
  p.gamma_h = config.hdd.queued_startup_factor;
  p.gamma_s = config.ssd.queued_startup_factor;
  return p;
}

common::ByteCount CostModel::bytes_on_slot(common::Offset offset, common::ByteCount size,
                                           common::ByteCount slot_start,
                                           common::ByteCount width,
                                           common::ByteCount cycle) {
  if (size == 0 || width == 0) return 0;
  assert(cycle > 0 && slot_start + width <= cycle);
  // f(x) = bytes of [0, x) whose position-in-cycle lies inside the slot.
  auto f = [&](common::Offset x) -> common::ByteCount {
    const common::ByteCount full = (x / cycle) * width;
    const common::ByteCount rem = x % cycle;
    const common::ByteCount partial =
        rem <= slot_start ? 0 : std::min<common::ByteCount>(rem - slot_start, width);
    return full + partial;
  };
  return f(offset + size) - f(offset);
}

double CostModel::request_cost(const ModelRequest& r, common::ByteCount h,
                               common::ByteCount s) const {
  const std::size_t m = params_.num_hservers;
  const std::size_t n = params_.num_sservers;
  assert(h > 0 || s > 0);
  const common::ByteCount cycle =
      static_cast<common::ByteCount>(m) * h + static_cast<common::ByteCount>(n) * s;
  if (r.size == 0 || cycle == 0) return 0.0;

  // Exact per-server byte shares under the stripe-pair layout: HServers own
  // slots [i*h, (i+1)*h), SServers own [m*h + j*s, m*h + (j+1)*s).
  std::vector<common::ByteCount> bytes(m + n, 0);
  for (std::size_t i = 0; i < m; ++i) {
    bytes[i] = bytes_on_slot(r.offset, r.size, static_cast<common::ByteCount>(i) * h, h, cycle);
  }
  const common::ByteCount s_base = static_cast<common::ByteCount>(m) * h;
  for (std::size_t j = 0; j < n; ++j) {
    bytes[m + j] = bytes_on_slot(r.offset, r.size,
                                 s_base + static_cast<common::ByteCount>(j) * s, s, cycle);
  }

  const double c = concurrency_aware_ ? std::max<std::uint32_t>(r.concurrency, 1) : 1.0;
  const double others = c - 1.0;
  const bool read = r.op == common::OpType::kRead;
  const double alpha_s = read ? params_.alpha_sr : params_.alpha_sw;
  const double beta_s = read ? params_.beta_sr : params_.beta_sw;
  const auto w_cycle = static_cast<double>(cycle);
  const auto size = static_cast<double>(r.size);

  // Per-server batch term (see header): r contributes exact geometry, the
  // other c-1 concurrent requests contribute phase-averaged expectations.
  double worst = 0.0;
  for (std::size_t i = 0; i < m + n; ++i) {
    const bool hserver = i < m;
    const double w = static_cast<double>(hserver ? h : s);
    if (w <= 0.0) continue;
    const double q_touch = std::min(1.0, (size + w) / w_cycle);
    const double p = (bytes[i] > 0 ? 1.0 : 0.0) + others * q_touch;
    if (p <= 0.0) continue;
    const double load = static_cast<double>(bytes[i]) + others * size * w / w_cycle;
    const double alpha = hserver ? params_.alpha_h : alpha_s;
    const double gamma = hserver ? params_.gamma_h : params_.gamma_s;
    const double beta = hserver ? params_.beta_h : beta_s;
    // First touch pays full alpha (probability-weighted when p < 1), queued
    // touches pay gamma*alpha; every message pays the wire latency.
    const double startup = alpha * (std::min(p, 1.0) + std::max(p - 1.0, 0.0) * gamma) +
                           p * params_.net_latency;
    worst = std::max(worst, startup + load * (params_.t + beta));
  }
  return worst;
}

double CostModel::region_cost(const std::vector<ModelRequest>& requests,
                              common::ByteCount h, common::ByteCount s) const {
  double total = 0.0;
  for (const ModelRequest& r : requests) total += request_cost(r, h, s);
  return total;
}

std::vector<CostModel::AggregatedRequest> CostModel::aggregate(
    const std::vector<ModelRequest>& requests) {
  std::vector<AggregatedRequest> patterns;
  for (const ModelRequest& r : requests) {
    auto match = std::find_if(patterns.begin(), patterns.end(), [&](const AggregatedRequest& p) {
      return p.op == r.op && p.size == r.size && p.concurrency == r.concurrency;
    });
    if (match == patterns.end()) {
      patterns.push_back(AggregatedRequest{r.op, r.size, r.concurrency, 0, {}});
      match = std::prev(patterns.end());
    }
    ++match->count;
    // Strided reservoir: keep the first kOffsetSamples offsets, then
    // overwrite round-robin with an ever-growing stride so the samples stay
    // spread across the whole region instead of clustering at its start.
    if (match->sample_offsets.size() < kOffsetSamples) {
      match->sample_offsets.push_back(r.offset);
    } else if (match->count % (match->count / kOffsetSamples) == 0) {
      match->sample_offsets[(match->count / kOffsetSamples) % kOffsetSamples] = r.offset;
    }
  }
  return patterns;
}

double CostModel::batch_cost(const std::vector<const ModelRequest*>& batch,
                             common::ByteCount h, common::ByteCount s) const {
  const std::size_t m = params_.num_hservers;
  const std::size_t n = params_.num_sservers;
  const common::ByteCount cycle =
      static_cast<common::ByteCount>(m) * h + static_cast<common::ByteCount>(n) * s;
  if (batch.empty() || cycle == 0) return 0.0;

  // Exact per-server accumulation over the batch.  When the trace-measured
  // concurrency exceeds the batch's member count — a region sees only its
  // slice of a file-wide concurrent burst, as with HARL's offset regions —
  // the whole batch is scaled up: the sibling requests live in other
  // regions but still contend on the same shared servers.
  double scale = 1.0;
  if (concurrency_aware_) {
    std::uint32_t measured = 1;
    for (const ModelRequest* r : batch) measured = std::max(measured, r->concurrency);
    scale = std::max(1.0, static_cast<double>(measured) / static_cast<double>(batch.size()));
  }
  std::vector<common::ByteCount> read_bytes(m + n, 0);
  std::vector<common::ByteCount> write_bytes(m + n, 0);
  std::vector<std::uint32_t> touches(m + n, 0);
  for (const ModelRequest* r : batch) {
    if (r->size == 0) continue;
    for (std::size_t i = 0; i < m + n; ++i) {
      const common::ByteCount w = i < m ? h : s;
      if (w == 0) continue;
      const common::ByteCount start =
          i < m ? static_cast<common::ByteCount>(i) * h
                : static_cast<common::ByteCount>(m) * h + static_cast<common::ByteCount>(i - m) * s;
      const common::ByteCount b = bytes_on_slot(r->offset, r->size, start, w, cycle);
      if (b == 0) continue;
      ++touches[i];
      (r->op == common::OpType::kRead ? read_bytes[i] : write_bytes[i]) += b;
    }
  }

  double worst = 0.0;
  for (std::size_t i = 0; i < m + n; ++i) {
    if (touches[i] == 0) continue;
    const bool hserver = i < m;
    const double p = touches[i] * scale;
    const double alpha = hserver ? params_.alpha_h
                                 : (read_bytes[i] >= write_bytes[i] ? params_.alpha_sr
                                                                    : params_.alpha_sw);
    const double gamma = hserver ? params_.gamma_h : params_.gamma_s;
    const double startup =
        alpha * (1.0 + (p - 1.0) * gamma) + p * params_.net_latency;
    const double beta_r = hserver ? params_.beta_h : params_.beta_sr;
    const double beta_w = hserver ? params_.beta_h : params_.beta_sw;
    const double drain = scale * (static_cast<double>(read_bytes[i]) * (params_.t + beta_r) +
                                  static_cast<double>(write_bytes[i]) * (params_.t + beta_w));
    worst = std::max(worst, startup + drain);
  }
  return worst;
}

BatchedRegion BatchedRegion::build(const std::vector<ModelRequest>& requests,
                                   bool batch_by_time, std::size_t max_samples) {
  BatchedRegion region;
  region.requests_ = requests;
  std::sort(region.requests_.begin(), region.requests_.end(),
            [](const ModelRequest& a, const ModelRequest& b) { return a.time < b.time; });

  // Cut into batches (runs of equal issue time), then group batches whose
  // shape — the multiset of (op, size) — matches.
  struct Key {
    std::vector<std::pair<int, common::ByteCount>> members;
    bool operator==(const Key&) const = default;
  };
  std::vector<Key> keys;  // parallel to shapes_
  max_samples = std::max<std::size_t>(max_samples, 1);

  std::size_t begin = 0;
  while (begin < region.requests_.size()) {
    std::size_t end = begin;
    if (batch_by_time) {
      while (end < region.requests_.size() &&
             region.requests_[end].time == region.requests_[begin].time) {
        ++end;
      }
    } else {
      end = begin + 1;  // every request alone: the c = 1 ablation
    }
    std::vector<const ModelRequest*> batch;
    Key key;
    for (std::size_t i = begin; i < end; ++i) {
      batch.push_back(&region.requests_[i]);
      key.members.emplace_back(static_cast<int>(region.requests_[i].op),
                               region.requests_[i].size);
    }
    std::sort(key.members.begin(), key.members.end());

    std::size_t shape_index = keys.size();
    for (std::size_t k = 0; k < keys.size(); ++k) {
      if (keys[k] == key) {
        shape_index = k;
        break;
      }
    }
    if (shape_index == keys.size()) {
      keys.push_back(std::move(key));
      region.shapes_.emplace_back();
    }
    Shape& shape = region.shapes_[shape_index];
    ++shape.count;
    if (shape.samples.size() < max_samples) {
      shape.samples.push_back(std::move(batch));
    } else if (shape.count % (shape.count / max_samples) == 0) {
      // Strided replacement keeps samples spread across the region's life.
      shape.samples[(shape.count / max_samples) % max_samples] = std::move(batch);
    }
    ++region.total_batches_;
    begin = end;
  }
  return region;
}

double BatchedRegion::cost(const CostModel& model, common::ByteCount h,
                           common::ByteCount s) const {
  double total = 0.0;
  for (const Shape& shape : shapes_) {
    double mean = 0.0;
    for (const auto& batch : shape.samples) {
      mean += model.batch_cost(batch, h, s);
    }
    mean /= static_cast<double>(shape.samples.size());
    total += static_cast<double>(shape.count) * mean;
  }
  return total;
}

double CostModel::aggregated_cost(const std::vector<AggregatedRequest>& patterns,
                                  common::ByteCount h, common::ByteCount s) const {
  double total = 0.0;
  for (const AggregatedRequest& p : patterns) {
    ModelRequest r;
    r.op = p.op;
    r.size = p.size;
    r.concurrency = p.concurrency;
    double mean = 0.0;
    if (p.sample_offsets.empty()) {
      r.offset = 0;
      mean = request_cost(r, h, s);
    } else {
      for (const common::Offset offset : p.sample_offsets) {
        r.offset = offset;
        mean += request_cost(r, h, s);
      }
      mean /= static_cast<double>(p.sample_offsets.size());
    }
    total += static_cast<double>(p.count) * mean;
  }
  return total;
}

}  // namespace mha::core
