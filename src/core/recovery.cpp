#include "core/recovery.hpp"

#include <algorithm>
#include <vector>

#include "common/log.hpp"

namespace mha::core {

namespace {

constexpr common::ByteCount kChunk = 4 * 1024 * 1024;

/// Chunked byte copy `from[from_offset ...]` -> `to[to_offset ...]` on the
/// recovery timeline (recovery is offline; its traffic is not measured).
common::Status copy_range(pfs::HybridPfs& pfs, common::FileId from,
                          common::Offset from_offset, common::FileId to,
                          common::Offset to_offset, common::ByteCount length,
                          common::Seconds& clock) {
  std::vector<std::uint8_t> buffer;
  common::ByteCount moved = 0;
  while (moved < length) {
    const common::ByteCount piece = std::min<common::ByteCount>(kChunk, length - moved);
    buffer.resize(piece);
    auto r = pfs.read(from, from_offset + moved, buffer.data(), piece, clock);
    if (!r.is_ok()) return r.status();
    auto w = pfs.write(to, to_offset + moved, buffer.data(), piece, r->completion);
    if (!w.is_ok()) return w.status();
    clock = w->completion;
    moved += piece;
  }
  return common::Status::ok();
}

/// Drops every journaled region file that exists on the PFS.
common::Status drop_regions(pfs::HybridPfs& pfs, const fault::MigrationJournal& journal,
                            RecoveryReport& report) {
  for (const fault::JournalRegion& region : journal.regions()) {
    if (!pfs.open(region.name).is_ok()) continue;  // never created / already gone
    MHA_RETURN_IF_ERROR(pfs.remove(region.name));
    ++report.regions_removed;
  }
  return common::Status::ok();
}

/// Rebuilds the reordering table the journal describes.
common::Result<Drt> rebuild_drt(const fault::MigrationJournal& journal) {
  Drt drt(journal.o_file());
  for (const fault::JournalEntry& entry : journal.entries()) {
    MHA_RETURN_IF_ERROR(
        drt.insert(DrtEntry{entry.o_offset, entry.length, entry.r_file, entry.r_offset}));
  }
  return drt;
}

}  // namespace

const char* to_string(RecoveryAction action) {
  switch (action) {
    case RecoveryAction::kNone: return "none";
    case RecoveryAction::kRolledBack: return "rolled-back";
    case RecoveryAction::kRolledForward: return "rolled-forward";
    case RecoveryAction::kFoldedBack: return "folded-back";
  }
  return "unknown";
}

common::Result<RecoveryReport> recover_migration(pfs::HybridPfs& pfs,
                                                 fault::MigrationJournal& journal) {
  if (!journal.is_open()) {
    return common::Status::failed_precondition("recovery: journal not open");
  }
  RecoveryReport report;
  const kv::LoadReport& replay = journal.load_report();
  report.journal_torn = replay.tail_truncated;
  if (replay.tail_truncated) {
    MHA_WARN << "recovery: journal tail was torn (" << replay.torn_bytes
             << " bytes truncated" << (replay.crc_mismatch ? ", crc mismatch" : "")
             << "); acting on last durable phase";
  }
  const fault::JournalPhase phase = journal.phase();
  if (phase == fault::JournalPhase::kNone) return report;

  MHA_INFO << "recovery: journal at phase " << fault::to_string(phase) << " for "
           << journal.o_file();

  if (phase == fault::JournalPhase::kPlanned ||
      phase == fault::JournalPhase::kRegionsCreated) {
    // Roll back: no byte of the original file was modified, so dropping
    // whatever region files came into existence restores the pre-migration
    // state exactly.
    MHA_RETURN_IF_ERROR(drop_regions(pfs, journal, report));
    MHA_RETURN_IF_ERROR(journal.clear());
    report.action = RecoveryAction::kRolledBack;
    return report;
  }

  if (phase == fault::JournalPhase::kCopying || phase == fault::JournalPhase::kCopied) {
    // Roll forward: the plan is fully journaled, copies original -> region
    // are idempotent, and per-entry progress records bound the re-work.
    auto original = pfs.open(journal.o_file());
    if (!original.is_ok()) return original.status();
    for (const fault::JournalRegion& region : journal.regions()) {
      if (pfs.open(region.name).is_ok()) continue;
      auto layout = pfs::StripeLayout::create(region.widths);
      if (!layout.is_ok()) return layout.status();
      auto id = pfs.create_file(region.name, std::move(layout).take());
      if (!id.is_ok()) return id.status();
      ++report.regions_created;
    }
    common::Seconds clock = 0.0;
    const std::vector<fault::JournalEntry>& entries = journal.entries();
    for (std::size_t e = 0; e < entries.size(); ++e) {
      const fault::JournalEntry& entry = entries[e];
      if (journal.copy_progress(e) >= entry.length) continue;  // already copied
      auto region = pfs.open(entry.r_file);
      if (!region.is_ok()) return region.status();
      MHA_RETURN_IF_ERROR(copy_range(pfs, *original, entry.o_offset, *region,
                                     entry.r_offset, entry.length, clock));
      MHA_RETURN_IF_ERROR(journal.set_copy_progress(e, entry.length));
      report.bytes_copied += entry.length;
    }
    MHA_RETURN_IF_ERROR(journal.commit());
    MHA_ASSIGN_OR_RETURN(report.drt, rebuild_drt(journal));
    report.has_drt = true;
    MHA_RETURN_IF_ERROR(journal.clear());
    report.action = RecoveryAction::kRolledForward;
    return report;
  }

  if (phase == fault::JournalPhase::kCommitted) {
    // The migration already succeeded; only the redirector needs rebuilding.
    MHA_ASSIGN_OR_RETURN(report.drt, rebuild_drt(journal));
    report.has_drt = true;
    MHA_RETURN_IF_ERROR(journal.clear());
    report.action = RecoveryAction::kRolledForward;
    return report;
  }

  // kFoldback: re-run the idempotent region -> original copies for every
  // region file still present (a region already removed finished its copies
  // before the crash), then drop the regions.
  auto original = pfs.open(journal.o_file());
  if (!original.is_ok()) return original.status();
  common::Seconds clock = 0.0;
  for (const fault::JournalEntry& entry : journal.entries()) {
    auto region = pfs.open(entry.r_file);
    if (!region.is_ok()) continue;
    MHA_RETURN_IF_ERROR(copy_range(pfs, *region, entry.r_offset, *original,
                                   entry.o_offset, entry.length, clock));
    report.bytes_copied += entry.length;
  }
  MHA_RETURN_IF_ERROR(drop_regions(pfs, journal, report));
  MHA_RETURN_IF_ERROR(journal.clear());
  report.action = RecoveryAction::kFoldedBack;
  return report;
}

}  // namespace mha::core
