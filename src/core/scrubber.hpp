// On-demand integrity scrubber with DRT-driven self-healing.
//
// The migration that MHA performs for performance doubles as a durability
// mechanism: after placement, every reordered byte exists twice — at its
// original stripe location and in a region file — and the DRT is an exact
// map between the two.  The scrubber surfaces that: it sweeps every
// (file, server) extent store chunk by chunk against the per-chunk CRCs
// (pfs::ExtentStore::verify_chunks) and re-materializes corrupted chunks
// from the surviving copy:
//
//   * original-file chunks covered by DRT entries are rebuilt from the
//     region files (the region is authoritative after the commit point, so
//     this is correct even for ranges overwritten since migration),
//   * region-file chunks whose entries are *clean* (not overwritten through
//     the redirector since migration) are rebuilt from the original file via
//     the DRT inverse mapping,
//   * region slack between entries is rebuilt as zeros — nothing legitimate
//     was ever written there, so a misdirected payload squatting in it is
//     simply evicted,
//   * everything else (passthrough original data, dirty region entries, torn
//     tails whose payload was never durable anywhere) is reported
//     unrepairable — the honest answer when no intact second copy exists.
//
// Repair is all-or-nothing per chunk: the replacement content for the whole
// chunk is assembled from verified sources first and written only when every
// byte of it resolved.  Writing a partial repair would re-checksum the chunk
// and silently bless whatever corruption remained — the masking hazard this
// design exists to avoid.
//
// The scrubber works purely on the content plane (DataServer store/load, no
// ServerSim charges, no fault-injection draws, no scheduler interaction), so
// scrubbing never perturbs virtual-time schedules or seeded RNG streams —
// every timing golden survives a scrub pass bit for bit.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "core/drt.hpp"
#include "fault/injector.hpp"
#include "kv/kvstore.hpp"
#include "pfs/file_system.hpp"

namespace mha::core {

struct ScrubOptions {
  /// When false, detect and report only (a read-only audit pass).
  bool repair = true;
};

/// One faulty chunk the sweep found.
struct ScrubFinding {
  std::string file;
  std::size_t server = 0;
  common::Offset chunk_offset = 0;  ///< physical offset on that server
  common::ByteCount length = 0;
  std::uint32_t expected_crc = 0;
  std::uint32_t actual_crc = 0;
  bool orphan = false;    ///< data with no checksum (misdirected write)
  bool repaired = false;
  std::string detail;     ///< repair source, or why unrepairable
};

struct ScrubReport {
  std::size_t files_scanned = 0;
  std::size_t stores_scanned = 0;  ///< (file, server) stores holding data
  std::size_t chunks_faulty = 0;
  std::size_t repaired = 0;
  std::size_t unrepairable = 0;
  common::ByteCount bytes_rewritten = 0;
  std::vector<ScrubFinding> findings;

  bool clean() const { return chunks_faulty == 0; }
  void merge(const ScrubReport& other);
};

class Scrubber {
 public:
  explicit Scrubber(pfs::HybridPfs& pfs) : pfs_(&pfs) {}

  /// Registers the deployed reordering table (borrowed).  Enables
  /// repair-from-region for the original file and repair-from-origin for
  /// clean region entries; without it the scrubber can only detect.
  void attach_drt(const Drt* drt);

  /// Counts detected/repaired/unrepairable chunks and scrub passes into the
  /// shared fault ledger (borrowed; may be nullptr).
  void set_metrics(fault::FaultMetrics* metrics) { metrics_ = metrics; }

  /// Sweeps one file's stores on every server.
  common::Result<ScrubReport> scrub_file(const std::string& name,
                                         const ScrubOptions& options = {});

  /// Sweeps every file the MDS knows, original file first so regions repair
  /// against an already-healed origin.  Counts one scrub pass.
  common::Result<ScrubReport> scrub_all(const ScrubOptions& options = {});

  /// CRC-audits a KV log (a DRT/RST/journal backing store) front to back
  /// without mutating it; damaged frames count as detected corruption and a
  /// torn tail as a truncation event in the fault ledger.
  common::Result<kv::LogVerifyReport> scrub_log(const kv::KvStore& store);

 private:
  /// Region-side view of one DRT entry (sorted by r_offset per region).
  struct InverseRun {
    common::Offset r_offset = 0;
    common::ByteCount length = 0;
    common::Offset o_offset = 0;
    bool dirty = false;
  };

  common::Status scrub_into(const std::string& name, const ScrubOptions& options,
                            ScrubReport& report);

  /// Verified content-plane read of a logical range (no timing charged).
  common::Status read_logical(const pfs::FileInfo& info, common::Offset offset,
                              std::uint8_t* out, common::ByteCount size) const;

  /// Resolves the authoritative second copy of [offset, offset+size) of
  /// `info` into `out`; non-ok when any byte has no intact source.
  common::Status fetch_from_source(const pfs::FileInfo& info, common::Offset offset,
                                   std::uint8_t* out, common::ByteCount size) const;

  pfs::HybridPfs* pfs_;
  const Drt* drt_ = nullptr;
  fault::FaultMetrics* metrics_ = nullptr;
  /// Region file name -> runs sorted by r_offset (rebuilt by attach_drt).
  std::unordered_map<std::string, std::vector<InverseRun>> inverse_;
};

}  // namespace mha::core
