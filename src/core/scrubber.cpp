#include "core/scrubber.hpp"

#include <algorithm>
#include <cstring>

namespace mha::core {

void ScrubReport::merge(const ScrubReport& other) {
  files_scanned += other.files_scanned;
  stores_scanned += other.stores_scanned;
  chunks_faulty += other.chunks_faulty;
  repaired += other.repaired;
  unrepairable += other.unrepairable;
  bytes_rewritten += other.bytes_rewritten;
  findings.insert(findings.end(), other.findings.begin(), other.findings.end());
}

void Scrubber::attach_drt(const Drt* drt) {
  drt_ = drt;
  inverse_.clear();
  if (drt_ == nullptr) return;
  for (const DrtEntry& entry : drt_->entries()) {
    inverse_[entry.r_file].push_back(
        InverseRun{entry.r_offset, entry.length, entry.o_offset, entry.dirty});
  }
  for (auto& [name, runs] : inverse_) {
    std::sort(runs.begin(), runs.end(),
              [](const InverseRun& a, const InverseRun& b) { return a.r_offset < b.r_offset; });
  }
}

common::Status Scrubber::read_logical(const pfs::FileInfo& info, common::Offset offset,
                                      std::uint8_t* out, common::ByteCount size) const {
  pfs::StripeLayout::SubExtentVec subs;
  info.layout.map_extent(offset, size, subs);
  for (const pfs::SubExtent& sub : subs) {
    common::Status st = pfs_->data_server(sub.server).load_verified(
        info.id, sub.physical_offset, out + (sub.logical_offset - offset), sub.length);
    if (!st.is_ok()) {
      return common::Status::corruption("source " + info.name + " server " +
                                        std::to_string(sub.server) + ": " + st.message());
    }
  }
  return common::Status::ok();
}

common::Status Scrubber::fetch_from_source(const pfs::FileInfo& info, common::Offset offset,
                                           std::uint8_t* out, common::ByteCount size) const {
  if (size == 0) return common::Status::ok();

  // Original file: every DRT-covered byte has an authoritative copy in a
  // region file (authoritative even when the entry is dirty — redirected
  // writes land only in the region, so the region is always newest).
  if (drt_ != nullptr && info.name == drt_->o_file()) {
    for (const DrtSegment& seg : drt_->lookup(offset, size)) {
      std::uint8_t* dst = out + (seg.logical_offset - offset);
      if (!seg.redirected) {
        if (seg.logical_offset < info.size) {
          return common::Status::failed_precondition(
              "no replica: passthrough range @" + std::to_string(seg.logical_offset) +
              " exists only in the original file");
        }
        std::memset(dst, 0, seg.length);  // beyond EOF: holes are the truth
        continue;
      }
      const std::string& region_name = drt_->region_name(seg.region);
      auto region_id = pfs_->open(region_name);
      if (!region_id.is_ok()) return region_id.status();
      MHA_RETURN_IF_ERROR(read_logical(pfs_->mds().info(*region_id), seg.target_offset, dst,
                                       seg.length));
    }
    return common::Status::ok();
  }

  // Region file: clean entries re-materialize from the original file via the
  // inverse mapping; slack between entries was never legitimately written,
  // so zeros are its truth (and evict any misdirected squatter).
  auto it = inverse_.find(info.name);
  if (it == inverse_.end()) {
    return common::Status::failed_precondition(
        "no reordering table covers file " + info.name);
  }
  auto origin_id = pfs_->open(drt_->o_file());
  if (!origin_id.is_ok()) return origin_id.status();
  const pfs::FileInfo& origin = pfs_->mds().info(*origin_id);

  std::memset(out, 0, size);
  const common::Offset end = offset + size;
  for (const InverseRun& run : it->second) {
    const common::Offset lo = std::max(offset, run.r_offset);
    const common::Offset hi = std::min(end, run.r_offset + run.length);
    if (lo >= hi) continue;
    if (run.dirty) {
      return common::Status::failed_precondition(
          "entry @r" + std::to_string(run.r_offset) +
          " overwritten since migration; the origin copy is stale");
    }
    MHA_RETURN_IF_ERROR(read_logical(origin, run.o_offset + (lo - run.r_offset),
                                     out + (lo - offset), hi - lo));
  }
  return common::Status::ok();
}

common::Status Scrubber::scrub_into(const std::string& name, const ScrubOptions& options,
                                    ScrubReport& report) {
  auto id = pfs_->open(name);
  if (!id.is_ok()) return id.status();
  const pfs::FileInfo& info = pfs_->mds().info(*id);
  ++report.files_scanned;

  constexpr common::ByteCount kChunk = pfs::ExtentStore::kChecksumChunk;
  std::vector<std::uint8_t> assembled;
  for (std::size_t server = 0; server < pfs_->num_servers(); ++server) {
    const pfs::ExtentStore* store = pfs_->data_server(server).store(*id);
    if (store == nullptr) continue;
    ++report.stores_scanned;

    std::vector<pfs::ExtentStore::ChunkFault> faults;
    store->verify_chunks(
        [&](const pfs::ExtentStore::ChunkFault& f) { faults.push_back(f); });

    for (const pfs::ExtentStore::ChunkFault& fault : faults) {
      ++report.chunks_faulty;
      if (metrics_ != nullptr) ++metrics_->corruption_detected;
      ScrubFinding finding;
      finding.file = name;
      finding.server = server;
      finding.chunk_offset = fault.offset;
      finding.length = fault.length;
      finding.expected_crc = fault.expected_crc;
      finding.actual_crc = fault.actual_crc;
      finding.orphan = fault.orphan;
      if (!options.repair) {
        finding.detail = "detect-only pass";
        report.findings.push_back(std::move(finding));
        continue;
      }

      // All-or-nothing: assemble the chunk's replacement from verified
      // sources before writing a single byte, so a partial repair can never
      // re-checksum (and thereby bless) surviving corruption.
      assembled.assign(kChunk, 0);
      common::Status repair = common::Status::ok();
      common::Offset q = fault.offset;
      const common::Offset chunk_end = fault.offset + kChunk;
      while (q < chunk_end && repair.is_ok()) {
        auto logical = info.layout.logical_offset(server, q);
        if (!logical.is_ok()) {
          repair = logical.status();
          break;
        }
        const common::ByteCount width = info.layout.width(server);
        const common::ByteCount run =
            std::min<common::ByteCount>(width - (q % width), chunk_end - q);
        repair = fetch_from_source(info, *logical, assembled.data() + (q - fault.offset), run);
        q += run;
      }
      if (repair.is_ok()) {
        pfs::ExtentStore* target = pfs_->data_server(server).mutable_store(*id);
        target->write(fault.offset, assembled.data(), kChunk);
        repair = target->verify_range(fault.offset, kChunk);
      }
      if (repair.is_ok()) {
        finding.repaired = true;
        finding.detail = "rebuilt from mapped copy";
        ++report.repaired;
        report.bytes_rewritten += kChunk;
        if (metrics_ != nullptr) ++metrics_->corruption_repaired;
      } else {
        finding.detail = repair.message();
        ++report.unrepairable;
        if (metrics_ != nullptr) ++metrics_->corruption_unrepairable;
      }
      report.findings.push_back(std::move(finding));
    }
  }
  return common::Status::ok();
}

common::Result<ScrubReport> Scrubber::scrub_file(const std::string& name,
                                                 const ScrubOptions& options) {
  ScrubReport report;
  MHA_RETURN_IF_ERROR(scrub_into(name, options, report));
  return report;
}

common::Result<ScrubReport> Scrubber::scrub_all(const ScrubOptions& options) {
  std::vector<std::string> names = pfs_->mds().list_files();
  std::sort(names.begin(), names.end());
  // Heal the original file first: region repairs read the origin, so an
  // origin healed from its regions maximises what the pass can recover.
  if (drt_ != nullptr) {
    auto it = std::find(names.begin(), names.end(), drt_->o_file());
    if (it != names.end()) std::rotate(names.begin(), it, it + 1);
  }
  ScrubReport report;
  for (const std::string& name : names) {
    MHA_RETURN_IF_ERROR(scrub_into(name, options, report));
  }
  if (metrics_ != nullptr) ++metrics_->scrub_passes;
  return report;
}

common::Result<kv::LogVerifyReport> Scrubber::scrub_log(const kv::KvStore& store) {
  auto report = store.verify_log();
  if (report.is_ok() && metrics_ != nullptr) {
    metrics_->corruption_detected += report->crc_failures;
    if (report->trailing_bytes > 0) ++metrics_->torn_tails_truncated;
  }
  return report;
}

}  // namespace mha::core
