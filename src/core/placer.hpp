// The placement phase (§III-G): realises a ReorganizePlan on the PFS.
//
// For every region the Placer creates a region file striped with its
// optimized <h, s> pair (the pair is recorded in the Region Stripe Table —
// in this implementation the MDS's per-file layout store, persisted through
// the KV backend when the PFS was opened with an RST path), then migrates
// the data: each DRT entry's bytes are copied from the original file into
// the region file.  Migration is the paper's off-line step, so it runs on a
// dedicated virtual timeline and its traffic is excluded from measurement
// windows (the caller resets stats afterwards).
#pragma once

#include <functional>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "core/reorganizer.hpp"
#include "core/rssd.hpp"
#include "fault/journal.hpp"
#include "pfs/file_system.hpp"

namespace mha::core {

struct PlacementReport {
  common::ByteCount bytes_migrated = 0;
  common::Seconds migration_time = 0.0;  ///< virtual time the copy took
  std::size_t regions_created = 0;
  // Heterogeneity-aware replication (ApplyOptions::replicate_hot).
  std::size_t replicas_created = 0;
  common::ByteCount bytes_replicated = 0;
  /// (region, replica) file-name pairs placement created; the pipeline
  /// stamps the DRT's replica column from these.
  std::vector<std::pair<std::string, std::string>> replica_pairs;
};

struct ApplyOptions {
  /// Copies run in `chunk` granularity to bound buffer sizes.
  common::ByteCount chunk = 4 * 1024 * 1024;
  /// Borrowed migration journal (may be nullptr).  When set, placement is
  /// crash-safe: the full plan is journaled before any PFS mutation, each
  /// phase is stamped as it completes, per-entry copy progress is recorded,
  /// and the final commit() is the atomic DRT/RST switch.  A crash at any
  /// point is recoverable via core::recover_migration.
  fault::MigrationJournal* journal = nullptr;
  /// Test hook simulating a crash: called with each named crash point
  /// ("planned", "regions-created", "copying", "copied-entry-<i>", "copied",
  /// "committed", "replica-<g>", "replicated"); returning true aborts
  /// placement there, leaving exactly the on-disk journal state a real
  /// crash would.
  std::function<bool(std::string_view)> crash_at;
  /// Heterogeneity-aware replication: after the migration commits, write a
  /// secondary copy of each hot (HServer-resident, h > 0) region onto the
  /// cost-model-chosen SServer (least projected transfer time under the
  /// cluster's Eq. 2 parameters; ties go to the lowest index).  Replicas
  /// are derived data and deliberately NOT part of the migration journal: a
  /// crash between commit and replica completion leaves a partial
  /// "<region>.rep" file that a re-deploy or the rebuilder re-creates from
  /// the intact primary.
  bool replicate_hot = false;
};

class Placer {
 public:
  /// `stripe_pairs` is index-aligned with `plan.regions`.
  static common::Result<PlacementReport> apply(pfs::HybridPfs& pfs,
                                               const ReorganizePlan& plan,
                                               const std::vector<StripePair>& stripe_pairs,
                                               const ApplyOptions& options);

  /// Back-compat convenience: default options except the copy chunk.
  static common::Result<PlacementReport> apply(pfs::HybridPfs& pfs,
                                               const ReorganizePlan& plan,
                                               const std::vector<StripePair>& stripe_pairs,
                                               common::ByteCount chunk = 4 * 1024 * 1024);
};

}  // namespace mha::core
