// The placement phase (§III-G): realises a ReorganizePlan on the PFS.
//
// For every region the Placer creates a region file striped with its
// optimized <h, s> pair (the pair is recorded in the Region Stripe Table —
// in this implementation the MDS's per-file layout store, persisted through
// the KV backend when the PFS was opened with an RST path), then migrates
// the data: each DRT entry's bytes are copied from the original file into
// the region file.  Migration is the paper's off-line step, so it runs on a
// dedicated virtual timeline and its traffic is excluded from measurement
// windows (the caller resets stats afterwards).
#pragma once

#include <vector>

#include "common/result.hpp"
#include "core/reorganizer.hpp"
#include "core/rssd.hpp"
#include "pfs/file_system.hpp"

namespace mha::core {

struct PlacementReport {
  common::ByteCount bytes_migrated = 0;
  common::Seconds migration_time = 0.0;  ///< virtual time the copy took
  std::size_t regions_created = 0;
};

class Placer {
 public:
  /// `stripe_pairs` is index-aligned with `plan.regions`.
  /// Copies in `chunk` granularity to bound buffer sizes.
  static common::Result<PlacementReport> apply(pfs::HybridPfs& pfs,
                                               const ReorganizePlan& plan,
                                               const std::vector<StripePair>& stripe_pairs,
                                               common::ByteCount chunk = 4 * 1024 * 1024);
};

}  // namespace mha::core
