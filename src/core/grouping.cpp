#include "core/grouping.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <set>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "exec/thread_pool.hpp"

namespace mha::core {

double feature_distance(const FeaturePoint& a, const FeaturePoint& b, double size_range,
                        double conc_range) {
  if (size_range <= 0.0) size_range = 1.0;
  if (conc_range <= 0.0) conc_range = 1.0;
  const double dx = (a.size - b.size) / size_range;
  const double dy = (a.concurrency - b.concurrency) / conc_range;
  return std::sqrt(dx * dx + dy * dy);
}

std::size_t choose_k(const std::vector<FeaturePoint>& points, const GroupingOptions& options) {
  if (points.empty()) return 1;
  std::set<std::pair<std::size_t, std::uint64_t>> buckets;
  for (const FeaturePoint& p : points) {
    const auto size_bucket =
        common::SizeHistogram::bucket_of(static_cast<std::uint64_t>(std::max(p.size, 0.0)));
    const auto conc = static_cast<std::uint64_t>(std::max(p.concurrency, 0.0));
    buckets.emplace(size_bucket, conc);
  }
  return std::clamp<std::size_t>(buckets.size(), 1, std::max<std::size_t>(options.max_groups, 1));
}

GroupingResult group_requests(const std::vector<FeaturePoint>& points, std::size_t k,
                              const GroupingOptions& options) {
  GroupingResult result;
  const std::size_t n = points.size();
  if (n == 0 || k == 0) return result;
  k = std::min(k, std::max<std::size_t>(options.max_groups, 1));

  // Normalisation ranges over the whole point set (Eq. 1's denominators).
  double size_min = std::numeric_limits<double>::infinity(), size_max = -size_min;
  double conc_min = size_min, conc_max = -size_min;
  for (const FeaturePoint& p : points) {
    size_min = std::min(size_min, p.size);
    size_max = std::max(size_max, p.size);
    conc_min = std::min(conc_min, p.concurrency);
    conc_max = std::max(conc_max, p.concurrency);
  }
  const double size_range = size_max - size_min;
  const double conc_range = conc_max - conc_min;

  result.assignment.assign(n, 0);

  if (n <= k) {
    // Algorithm 1 lines 2-5: too few points to iterate; every point seeds
    // its own group.
    result.centers = points;
    result.num_groups = n;
    for (std::size_t i = 0; i < n; ++i) result.assignment[i] = static_cast<int>(i);
    return result;
  }

  // Random initial centers: k distinct points (line 4's "randomly selected
  // R[t]", made collision-free so no center starts empty).
  common::Rng rng(options.seed);
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;
  rng.shuffle(indices);
  result.centers.reserve(k);
  for (std::size_t g = 0; g < k; ++g) result.centers.push_back(points[indices[g]]);

  // Lines 8-12: assign to the closest center, recompute centers; stop when
  // centers are unchanged or after max_iterations rounds.
  // The assignment step is a pure per-point nearest-center search, so it
  // parallelizes over fixed point chunks; each point's label depends only on
  // the (shared, read-only) centers, never on other points, so the result is
  // identical at any thread count.
  exec::ThreadPool& pool = exec::default_pool();
  const bool parallel_assign =
      pool.thread_count() > 1 && n >= std::max<std::size_t>(options.min_parallel_points, 1);
  constexpr std::size_t kAssignChunk = 4096;
  const auto assign_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_g = 0;
      for (std::size_t g = 0; g < k; ++g) {
        const double d = feature_distance(points[i], result.centers[g], size_range, conc_range);
        if (d < best) {
          best = d;
          best_g = static_cast<int>(g);
        }
      }
      result.assignment[i] = best_g;
    }
  };

  for (int iter = 0; iter < std::max(options.max_iterations, 1); ++iter) {
    ++result.iterations_run;
    if (parallel_assign) {
      const std::size_t chunks = (n + kAssignChunk - 1) / kAssignChunk;
      pool.parallel_for(chunks, [&](std::size_t c) {
        assign_range(c * kAssignChunk, std::min(n, (c + 1) * kAssignChunk));
      });
    } else {
      assign_range(0, n);
    }
    std::vector<FeaturePoint> sums(k);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto g = static_cast<std::size_t>(result.assignment[i]);
      sums[g].size += points[i].size;
      sums[g].concurrency += points[i].concurrency;
      ++counts[g];
    }
    bool changed = false;
    for (std::size_t g = 0; g < k; ++g) {
      if (counts[g] == 0) continue;  // keep the old center for empty groups
      FeaturePoint mean{sums[g].size / static_cast<double>(counts[g]),
                        sums[g].concurrency / static_cast<double>(counts[g])};
      if (feature_distance(mean, result.centers[g], size_range, conc_range) > 1e-12) {
        changed = true;
      }
      result.centers[g] = mean;
    }
    if (!changed) break;
  }

  // Compact away empty groups so labels are dense.
  std::vector<int> remap(k, -1);
  std::vector<FeaturePoint> live_centers;
  for (std::size_t i = 0; i < n; ++i) {
    const auto g = static_cast<std::size_t>(result.assignment[i]);
    if (remap[g] < 0) {
      remap[g] = static_cast<int>(live_centers.size());
      live_centers.push_back(result.centers[g]);
    }
    result.assignment[i] = remap[g];
  }
  result.centers = std::move(live_centers);
  result.num_groups = result.centers.size();
  return result;
}

GroupingResult group_requests_auto(const std::vector<FeaturePoint>& points,
                                   const GroupingOptions& options) {
  return group_requests(points, choose_k(points, options), options);
}

}  // namespace mha::core
