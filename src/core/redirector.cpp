#include "core/redirector.hpp"

namespace mha::core {

common::Result<Redirector> Redirector::create(pfs::HybridPfs& pfs, Drt drt,
                                              common::Seconds lookup_overhead) {
  auto original = pfs.open(drt.o_file());
  if (!original.is_ok()) return original.status();
  Redirector redirector(std::move(drt), *original, lookup_overhead);
  // Resolve every region name once; all region files must already exist
  // (the Placer runs before the redirection phase).
  for (const DrtEntry& entry : redirector.drt_.entries()) {
    if (redirector.id_cache_.contains(entry.r_file)) continue;
    auto id = pfs.open(entry.r_file);
    if (!id.is_ok()) return id.status();
    redirector.id_cache_.emplace(entry.r_file, *id);
  }
  return redirector;
}

std::vector<io::RedirectSegment> Redirector::translate(common::Offset offset,
                                                       common::ByteCount size) {
  ++translations_;
  std::vector<io::RedirectSegment> out;
  for (const DrtSegment& seg : drt_.lookup(offset, size)) {
    io::RedirectSegment r;
    r.offset = seg.target_offset;
    r.length = seg.length;
    r.logical_offset = seg.logical_offset;
    if (seg.redirected) {
      r.file = id_cache_.at(seg.r_file);
    } else {
      r.file = original_;
    }
    out.push_back(std::move(r));
  }
  return out;
}

Drt Redirector::identity_table(const std::string& file, common::ByteCount length,
                               common::ByteCount entry_size) {
  Drt drt(file);
  if (entry_size == 0) entry_size = length;
  for (common::Offset pos = 0; pos < length; pos += entry_size) {
    const common::ByteCount piece = std::min<common::ByteCount>(entry_size, length - pos);
    // Self-mapping entries: the "region" is the original file itself.
    (void)drt.insert(DrtEntry{pos, piece, file, pos});
  }
  return drt;
}

}  // namespace mha::core
