#include "core/redirector.hpp"

namespace mha::core {

common::Result<Redirector> Redirector::create(pfs::HybridPfs& pfs, Drt drt,
                                              common::Seconds lookup_overhead) {
  auto original = pfs.open(drt.o_file());
  if (!original.is_ok()) return original.status();
  Redirector redirector(std::move(drt), *original, lookup_overhead);
  // Resolve every interned region name once; all region files (including
  // replica files) must already exist (the Placer runs before the
  // redirection phase).  Replica pairs recorded in the DRT are registered
  // with the pfs failover table here — the runtime index the request path
  // consults is built from the durable column, never the other way round.
  MHA_RETURN_IF_ERROR(redirector.refresh(pfs));
  return redirector;
}

common::Status Redirector::refresh(pfs::HybridPfs& pfs) {
  region_files_.resize(drt_.region_count(), common::kInvalidFileId);
  for (RegionId id = 0; id < drt_.region_count(); ++id) {
    auto file = pfs.open(drt_.region_name(id));
    if (!file.is_ok()) return file.status();
    region_files_[id] = *file;
  }
  for (RegionId id = 0; id < drt_.region_count(); ++id) {
    const RegionId replica = drt_.replica_of_region(id);
    if (replica != kNoRegion) {
      pfs.set_replica(region_files_[id], region_files_[replica]);
    }
  }
  return common::Status::ok();
}

void Redirector::translate(common::Offset offset, common::ByteCount size,
                           io::SegmentList& out) {
  ++translations_;
  out.clear();
  drt_.lookup(offset, size, scratch_);
  emit_segments(out);
}

void Redirector::translate(common::Offset offset, common::ByteCount size,
                           io::SegmentList& out, io::TranslateCursor& cursor) {
  ++translations_;
  out.clear();
  Drt::LookupCursor c{cursor.index};
  drt_.lookup(offset, size, scratch_, c);
  cursor.index = c.index;
  emit_segments(out);
}

void Redirector::emit_segments(io::SegmentList& out) const {
  for (const DrtSegment& seg : scratch_) {
    const common::FileId file = seg.redirected ? region_files_[seg.region] : original_;
    const common::Offset target = seg.target_offset;
    // Coalesce with the previous piece when both spaces are contiguous: the
    // DRT may split a request across entries that pack adjacently in the
    // same region file, but the server sees one contiguous extent either
    // way, so forward it as one sub-request.
    if (!out.empty()) {
      io::RedirectSegment& prev = out.back();
      if (prev.file == file && prev.offset + prev.length == target &&
          prev.logical_offset + prev.length == seg.logical_offset) {
        prev.length += seg.length;
        continue;
      }
    }
    out.emplace_back(io::RedirectSegment{file, target, seg.length, seg.logical_offset});
  }
}

std::string Redirector::locate(common::Offset offset) const {
  Drt::SegmentVec pieces;
  drt_.lookup(offset, 1, pieces);
  if (pieces.empty()) return std::string();
  const DrtSegment& seg = pieces[0];
  if (!seg.redirected) {
    return "passthrough @" + std::to_string(seg.target_offset);
  }
  return "region " + drt_.region_name(seg.region) + " @" + std::to_string(seg.target_offset);
}

Drt Redirector::identity_table(const std::string& file, common::ByteCount length,
                               common::ByteCount entry_size) {
  Drt drt(file);
  if (entry_size == 0) entry_size = length;
  for (common::Offset pos = 0; pos < length; pos += entry_size) {
    const common::ByteCount piece = std::min<common::ByteCount>(entry_size, length - pos);
    // Self-mapping entries: the "region" is the original file itself.
    (void)drt.insert(DrtEntry{pos, piece, file, pos});
  }
  return drt;
}

}  // namespace mha::core
