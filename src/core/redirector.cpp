#include "core/redirector.hpp"

namespace mha::core {

common::Result<Redirector> Redirector::create(pfs::HybridPfs& pfs, Drt drt,
                                              common::Seconds lookup_overhead) {
  auto original = pfs.open(drt.o_file());
  if (!original.is_ok()) return original.status();
  Redirector redirector(std::move(drt), *original, lookup_overhead);
  // Resolve every interned region name once; all region files must already
  // exist (the Placer runs before the redirection phase).
  redirector.region_files_.reserve(redirector.drt_.region_count());
  for (RegionId id = 0; id < redirector.drt_.region_count(); ++id) {
    auto file = pfs.open(redirector.drt_.region_name(id));
    if (!file.is_ok()) return file.status();
    redirector.region_files_.push_back(*file);
  }
  return redirector;
}

void Redirector::translate(common::Offset offset, common::ByteCount size,
                           io::SegmentList& out) {
  ++translations_;
  out.clear();
  drt_.lookup(offset, size, scratch_);
  emit_segments(out);
}

void Redirector::translate(common::Offset offset, common::ByteCount size,
                           io::SegmentList& out, io::TranslateCursor& cursor) {
  ++translations_;
  out.clear();
  Drt::LookupCursor c{cursor.index};
  drt_.lookup(offset, size, scratch_, c);
  cursor.index = c.index;
  emit_segments(out);
}

void Redirector::emit_segments(io::SegmentList& out) const {
  for (const DrtSegment& seg : scratch_) {
    const common::FileId file = seg.redirected ? region_files_[seg.region] : original_;
    const common::Offset target = seg.target_offset;
    // Coalesce with the previous piece when both spaces are contiguous: the
    // DRT may split a request across entries that pack adjacently in the
    // same region file, but the server sees one contiguous extent either
    // way, so forward it as one sub-request.
    if (!out.empty()) {
      io::RedirectSegment& prev = out.back();
      if (prev.file == file && prev.offset + prev.length == target &&
          prev.logical_offset + prev.length == seg.logical_offset) {
        prev.length += seg.length;
        continue;
      }
    }
    out.emplace_back(io::RedirectSegment{file, target, seg.length, seg.logical_offset});
  }
}

std::string Redirector::locate(common::Offset offset) const {
  Drt::SegmentVec pieces;
  drt_.lookup(offset, 1, pieces);
  if (pieces.empty()) return std::string();
  const DrtSegment& seg = pieces[0];
  if (!seg.redirected) {
    return "passthrough @" + std::to_string(seg.target_offset);
  }
  return "region " + drt_.region_name(seg.region) + " @" + std::to_string(seg.target_offset);
}

Drt Redirector::identity_table(const std::string& file, common::ByteCount length,
                               common::ByteCount entry_size) {
  Drt drt(file);
  if (entry_size == 0) entry_size = length;
  for (common::Offset pos = 0; pos < length; pos += entry_size) {
    const common::ByteCount piece = std::min<common::ByteCount>(entry_size, length - pos);
    // Self-mapping entries: the "region" is the original file itself.
    (void)drt.insert(DrtEntry{pos, piece, file, pos});
  }
  return drt;
}

}  // namespace mha::core
