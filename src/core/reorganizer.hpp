// The Data Reorganizer of MHA's reordering phase (§III-E).
//
// Consumes the trace (with per-request concurrency annotations) and the
// Algorithm 1 group assignment, and produces the migration plan: one region
// per group, the DRT mapping original byte ranges into the regions, and the
// per-region request lists (region-relative offsets) that feed Algorithm 2.
//
// Block ownership: data blocks are claimed by the *first* request that
// touches them, in trace order — "a later data block is moved to be adjacent
// to the first data block it is similar to" — so a byte range touched by
// requests of several groups lands in the group of its earliest toucher.
// Within a region, blocks are "ordered by their offsets within the original
// file".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "core/cost_model.hpp"
#include "core/drt.hpp"
#include "trace/record.hpp"

namespace mha::core {

/// One reordered region: a physical file holding the data blocks of one
/// access-pattern group.
struct Region {
  std::string name;          ///< region file name
  int group = 0;             ///< Algorithm 1 label
  common::ByteCount length = 0;
  /// The group's requests translated to region-relative offsets (input to
  /// RSSD).  A request whose bytes were claimed by another group keeps its
  /// size but anchors at its first in-region byte.
  std::vector<ModelRequest> requests;
  /// How many trace records belong to this region's group.
  std::size_t record_count = 0;
};

struct ReorganizePlan {
  std::vector<Region> regions;
  Drt drt;
};

struct ReorganizerOptions {
  /// Region file names are "<original>.mha.r<group>".
  std::string region_suffix = ".mha.r";
};

/// Builds the migration plan.  `assignment` and `concurrency` are
/// index-aligned with `trace.records`; labels must be dense in
/// [0, num_groups).
common::Result<ReorganizePlan> build_plan(const trace::Trace& trace,
                                          const std::vector<int>& assignment,
                                          const std::vector<std::uint32_t>& concurrency,
                                          std::size_t num_groups,
                                          const ReorganizerOptions& options = {});

}  // namespace mha::core
