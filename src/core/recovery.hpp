// Crash recovery for journaled migrations (the other half of the
// fault::MigrationJournal contract).
//
// After a crash — in placement or in OnlineMha's fold-back — the journal on
// disk names the interrupted migration's phase, plan and per-entry copy
// progress.  recover_migration() applies the recovery invariants documented
// in fault/journal.hpp:
//
//   * before kCopying  -> roll BACK: the original file is untouched, so any
//                         region files that were created are dropped
//   * kCopying/kCopied -> roll FORWARD: missing region files are re-created
//                         from their journaled widths, unfinished entries
//                         are re-copied (copies original -> region are
//                         idempotent), then the migration commits
//   * kCommitted       -> the migration already succeeded; the DRT is
//                         rebuilt from the journal so the caller can
//                         re-attach a Redirector
//   * kFoldback        -> the idempotent region -> original copies are
//                         re-run, then the regions are dropped
//
// Either way the journal is cleared and the file system is left in exactly
// one of two consistent states: fully migrated (with a DRT to serve from)
// or fully original.
#pragma once

#include "common/result.hpp"
#include "core/drt.hpp"
#include "fault/journal.hpp"
#include "pfs/file_system.hpp"

namespace mha::core {

enum class RecoveryAction {
  kNone = 0,        ///< journal held no unfinished migration
  kRolledBack,      ///< pre-copy crash: regions dropped, original untouched
  kRolledForward,   ///< copy finished and committed (or already committed)
  kFoldedBack,      ///< fold-back re-run, regions dropped
};

const char* to_string(RecoveryAction action);

struct RecoveryReport {
  RecoveryAction action = RecoveryAction::kNone;
  std::size_t regions_removed = 0;
  std::size_t regions_created = 0;   ///< region files re-created from widths
  common::ByteCount bytes_copied = 0;
  /// Rebuilt reordering table; meaningful only when `has_drt` (the
  /// migration ended committed and a Redirector should be re-attached).
  Drt drt;
  bool has_drt = false;
  /// True when the journal's open() replay truncated a torn record off the
  /// log tail — the crash hit mid-append, so recovery acted on the last
  /// *durable* phase rather than the one being written.
  bool journal_torn = false;
};

/// Resolves whatever migration `journal` recorded against `pfs`, clearing
/// the journal on success.  Safe to call on a journal with no active
/// migration (returns kNone).
common::Result<RecoveryReport> recover_migration(pfs::HybridPfs& pfs,
                                                 fault::MigrationJournal& journal);

}  // namespace mha::core
