#include "core/reorganizer.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace mha::core {

namespace {

/// A byte range claimed for one group during the ownership pass.
struct Block {
  common::Offset o_offset = 0;
  common::ByteCount length = 0;
};

}  // namespace

common::Result<ReorganizePlan> build_plan(const trace::Trace& trace,
                                          const std::vector<int>& assignment,
                                          const std::vector<std::uint32_t>& concurrency,
                                          std::size_t num_groups,
                                          const ReorganizerOptions& options) {
  const std::size_t n = trace.records.size();
  if (assignment.size() != n || concurrency.size() != n) {
    return common::Status::invalid_argument("reorganizer: annotation arrays misaligned");
  }
  if (num_groups == 0) {
    return common::Status::invalid_argument("reorganizer: no groups");
  }
  for (int g : assignment) {
    if (g < 0 || static_cast<std::size_t>(g) >= num_groups) {
      return common::Status::invalid_argument("reorganizer: group label out of range");
    }
  }

  ReorganizePlan plan;
  plan.drt = Drt(trace.file_name);
  plan.regions.resize(num_groups);
  for (std::size_t g = 0; g < num_groups; ++g) {
    plan.regions[g].name = trace.file_name + options.region_suffix + std::to_string(g);
    plan.regions[g].group = static_cast<int>(g);
  }

  // --- Ownership pass: first toucher (in trace order) claims each byte. ---
  // claimed: start -> (end, group), non-overlapping, ordered.
  std::map<common::Offset, std::pair<common::Offset, int>> claimed;
  std::vector<std::vector<Block>> group_blocks(num_groups);

  for (std::size_t i = 0; i < n; ++i) {
    const trace::TraceRecord& r = trace.records[i];
    if (r.size == 0) continue;
    const int g = assignment[i];
    common::Offset pos = r.offset;
    const common::Offset end = r.offset + r.size;

    auto it = claimed.upper_bound(pos);
    if (it != claimed.begin() && std::prev(it)->second.first > pos) --it;
    while (pos < end) {
      if (it == claimed.end() || it->first >= end) {
        // Everything to `end` is unclaimed.
        group_blocks[static_cast<std::size_t>(g)].push_back(Block{pos, end - pos});
        it = claimed.emplace_hint(it, pos, std::make_pair(end, g));
        ++it;
        pos = end;
        break;
      }
      if (it->first > pos) {
        // Gap before the next claim.
        const common::Offset gap_end = it->first;
        group_blocks[static_cast<std::size_t>(g)].push_back(Block{pos, gap_end - pos});
        claimed.emplace(pos, std::make_pair(gap_end, g));
        pos = gap_end;
      }
      // Skip through the existing claim (whoever owns it keeps it).
      pos = std::max(pos, it->second.first);
      ++it;
    }
  }

  // --- Region construction: per group, blocks ordered by original offset,
  // packed densely; DRT entries merged when contiguous in both spaces.
  // Entries from all groups are collected first and inserted in ascending
  // o_offset order, so every insert into the flat DRT is an append (a
  // per-group insert order would interleave offsets across groups and turn
  // each insert into a middle-of-vector shift). ---
  std::vector<DrtEntry> entries;
  for (std::size_t g = 0; g < num_groups; ++g) {
    auto& blocks = group_blocks[g];
    std::sort(blocks.begin(), blocks.end(),
              [](const Block& a, const Block& b) { return a.o_offset < b.o_offset; });
    Region& region = plan.regions[g];
    common::Offset r_cursor = 0;
    DrtEntry pending;
    bool have_pending = false;
    for (const Block& b : blocks) {
      if (have_pending && pending.o_offset + pending.length == b.o_offset) {
        pending.length += b.length;  // contiguous in origin and region
      } else {
        if (have_pending) entries.push_back(std::move(pending));
        pending = DrtEntry{b.o_offset, b.length, region.name, r_cursor};
        have_pending = true;
      }
      r_cursor += b.length;
    }
    if (have_pending) entries.push_back(std::move(pending));
    region.length = r_cursor;
  }
  std::sort(entries.begin(), entries.end(),
            [](const DrtEntry& a, const DrtEntry& b) { return a.o_offset < b.o_offset; });
  for (DrtEntry& entry : entries) {
    MHA_RETURN_IF_ERROR(plan.drt.insert(std::move(entry)));
  }

  // --- Per-region request lists for RSSD: each record anchors in the region
  // holding its first byte (the DRT is authoritative; a record whose bytes
  // were claimed by another group is costed where it will actually land). ---
  std::unordered_map<std::string, std::size_t> region_by_name;
  for (std::size_t g = 0; g < num_groups; ++g) region_by_name[plan.regions[g].name] = g;

  for (std::size_t i = 0; i < n; ++i) {
    const trace::TraceRecord& r = trace.records[i];
    if (r.size == 0) continue;
    const auto segments = plan.drt.lookup(r.offset, r.size);
    if (segments.empty() || !segments.front().redirected) {
      return common::Status::corruption("reorganizer: traced range not claimed");
    }
    const auto region_it = region_by_name.find(plan.drt.region_name(segments.front().region));
    if (region_it == region_by_name.end()) {
      return common::Status::corruption("reorganizer: DRT names unknown region");
    }
    Region& region = plan.regions[region_it->second];
    ModelRequest mr;
    mr.op = r.op;
    mr.offset = segments.front().target_offset;
    mr.size = r.size;
    mr.concurrency = concurrency[i];
    mr.time = r.t_start;
    region.requests.push_back(mr);
    ++region.record_count;
  }

  // Drop regions that ended up empty (possible when a group's bytes were all
  // claimed by earlier groups), keeping DRT names intact for the survivors.
  std::vector<Region> live;
  for (Region& region : plan.regions) {
    if (region.length > 0 || !region.requests.empty()) live.push_back(std::move(region));
  }
  plan.regions = std::move(live);
  return plan;
}

}  // namespace mha::core
