// Region Stripe Size Determination — Algorithm 2 of §III-F.
//
// Exhaustively sweeps candidate stripe pairs <h, s> in `step` increments and
// keeps the pair minimising the summed cost-model time of the region's
// requests.  Bounds are adaptive (the scheme's improvement over HARL's
// average-request-size bound): when the largest request r_max is small
// (< (M+N)*64KiB) both bounds are r_max itself, widening the search;
// otherwise B_h = r_max/M and B_s = r_max/N, which "increases the chance for
// all the servers to work together" on large requests.  h starts at 0 —
// "dispatching the data only on SServer is allowed as long as this leads to
// enhanced performance" — and s starts above h to avoid assigning the slower
// servers wider stripes.
#pragma once

#include <string>
#include <vector>

#include "common/result.hpp"
#include "core/cost_model.hpp"

namespace mha::core {

struct RssdOptions {
  /// Sweep granularity; "the 'step' value is 4KB, which can be configured".
  common::ByteCount step = 4 * 1024;
  /// The small-r_max threshold multiplier (64KB in Algorithm 2 line 3).
  common::ByteCount bound_unit = 64 * 1024;
  /// Use HARL's fixed bound (mean request size) instead of the adaptive
  /// bounds — ablation of the paper's bound policy.
  bool adaptive_bounds = true;
  /// Run the <h, s> sweep on exec::default_pool().  Each h column's inner
  /// s loop is one task; columns are reduced in ascending h order with the
  /// same strict-< tie-break the serial loop uses, so the winning pair (and
  /// pairs_evaluated) are identical at any thread count.
  bool parallel = true;
  /// Sweeps below this candidate-pair estimate stay serial (fork overhead
  /// beats the work).
  std::size_t min_parallel_candidates = 512;
};

struct StripePair {
  common::ByteCount h = 0;  ///< stripe size on each HServer
  common::ByteCount s = 0;  ///< stripe size on each SServer

  friend bool operator==(const StripePair&, const StripePair&) = default;
  std::string to_string() const;
};

struct RssdResult {
  StripePair best;
  double best_cost = 0.0;
  std::size_t pairs_evaluated = 0;
};

/// Runs Algorithm 2 for one region.  `requests` hold region-relative
/// offsets.  Fails with kInvalidArgument when the region is empty.
common::Result<RssdResult> determine_stripes(const CostModel& model,
                                             const std::vector<ModelRequest>& requests,
                                             const RssdOptions& options = {});

}  // namespace mha::core
