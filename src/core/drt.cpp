#include "core/drt.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace mha::core {

RegionId Drt::intern(const std::string& name) {
  auto [it, inserted] = region_ids_.try_emplace(name, static_cast<RegionId>(region_names_.size()));
  if (inserted) {
    region_names_.push_back(name);
    region_replica_.push_back(kNoRegion);
  }
  return it->second;
}

common::Status Drt::set_replica(const std::string& r_file, const std::string& replica_file) {
  if (replica_file.empty() || replica_file == r_file) {
    return common::Status::invalid_argument("DRT: bad replica name for " + r_file);
  }
  const auto it = region_ids_.find(r_file);
  if (it == region_ids_.end()) {
    return common::Status::not_found("DRT: unknown region " + r_file);
  }
  const RegionId region = it->second;
  const RegionId replica = intern(replica_file);
  region_replica_[region] = replica;
  for (FlatEntry& e : entries_) {
    if (e.region == region) e.replica = replica;
  }
  return common::Status::ok();
}

common::Status Drt::retarget_region(const std::string& old_name, const std::string& new_name) {
  if (new_name.empty() || new_name == old_name) {
    return common::Status::invalid_argument("DRT: bad retarget name " + new_name);
  }
  const auto it = region_ids_.find(old_name);
  if (it == region_ids_.end()) {
    return common::Status::not_found("DRT: unknown region " + old_name);
  }
  if (region_ids_.find(new_name) != region_ids_.end()) {
    return common::Status::already_exists("DRT: region " + new_name + " already interned");
  }
  const RegionId id = it->second;
  region_ids_.erase(it);
  region_ids_.emplace(new_name, id);
  region_names_[id] = new_name;
  return common::Status::ok();
}

std::size_t Drt::first_after(common::Offset pos) const {
  // Branchless lower bound over the flat vector: both arms of the step are
  // computed and selected (compiles to cmov), so the search pipeline never
  // stalls on a mispredicted comparison.
  std::size_t lo = 0;
  std::size_t len = entries_.size();
  const FlatEntry* base = entries_.data();
  while (len > 0) {
    const std::size_t half = len >> 1;
    const bool le = base[lo + half].o_offset <= pos;
    lo = le ? lo + half + 1 : lo;
    len = le ? len - half - 1 : half;
  }
  return lo;
}

common::Status Drt::insert(DrtEntry entry) {
  if (entry.length == 0) {
    return common::Status::invalid_argument("DRT: zero-length entry");
  }
  if (entry.r_file.empty()) {
    return common::Status::invalid_argument("DRT: entry without region file");
  }
  const common::Offset start = entry.o_offset;
  const common::Offset end = start + entry.length;
  // Insertion point: first entry starting after `start`; overlap checks
  // against the neighbour on each side.
  const std::size_t pos = first_after(start);
  if (pos < entries_.size() && entries_[pos].o_offset < end) {
    return common::Status::already_exists("DRT: overlapping entry at offset " +
                                          std::to_string(entries_[pos].o_offset));
  }
  if (pos > 0 && entries_[pos - 1].o_end() > start) {
    return common::Status::already_exists("DRT: overlapping entry at offset " +
                                          std::to_string(entries_[pos - 1].o_offset));
  }
  covered_bytes_ += entry.length;
  FlatEntry flat;
  flat.o_offset = start;
  flat.length = entry.length;
  flat.r_offset = entry.r_offset;
  flat.region = intern(entry.r_file);
  flat.dirty = entry.dirty ? 1 : 0;
  if (!entry.replica_file.empty()) {
    flat.replica = intern(entry.replica_file);
    region_replica_[flat.region] = flat.replica;
  }
  entries_.insert(entries_.begin() + static_cast<std::ptrdiff_t>(pos), flat);
  return common::Status::ok();
}

std::size_t Drt::fill_segments(common::Offset pos, common::Offset end, std::size_t idx,
                               SegmentVec& out) const {
  const std::size_t n = entries_.size();
  const FlatEntry* base = entries_.data();
  std::size_t last = n;
  while (pos < end) {
    // Skip entries entirely before `pos`.
    while (idx < n && base[idx].o_end() <= pos) ++idx;
    if (idx == n || base[idx].o_offset >= end) {
      // Tail gap: passthrough to the original file.
      out.emplace_back(DrtSegment{false, kNoRegion, pos, end - pos, pos});
      break;
    }
    const FlatEntry& e = base[idx];
    if (e.o_offset > pos) {
      // Gap before the next entry.
      out.emplace_back(DrtSegment{false, kNoRegion, pos, e.o_offset - pos, pos});
      pos = e.o_offset;
    }
    const common::Offset piece_end = std::min<common::Offset>(end, e.o_end());
    DrtSegment seg;
    seg.redirected = true;
    seg.region = e.region;
    seg.target_offset = e.r_offset + (pos - e.o_offset);
    seg.length = piece_end - pos;
    seg.logical_offset = pos;
    seg.replica = e.replica;
    out.emplace_back(seg);
    pos = piece_end;
    last = idx;
    ++idx;
  }
  return last;
}

void Drt::lookup(common::Offset offset, common::ByteCount size, SegmentVec& out) const {
  out.clear();
  if (size == 0) return;
  const common::Offset pos = offset;
  const common::Offset end = offset + size;
  const std::size_t n = entries_.size();
  const FlatEntry* base = entries_.data();

  // Resolve the start index: the last entry with o_offset <= pos.  The
  // cached hint covers the sequential replay case (previous lookup ended at
  // or one entry before `pos`) in O(1); it is validated completely — an
  // entry qualifies only if the *next* entry starts past `pos` — so a stale
  // hint is just a miss that falls back to the binary search.
  std::size_t idx = n;
  bool have_start = false;
  if (hint_ < n) {
    std::size_t candidate = hint_;
    for (int steps = 0; steps < 2 && candidate < n; ++steps) {
      if (base[candidate].o_offset > pos) break;
      if (candidate + 1 == n || base[candidate + 1].o_offset > pos) {
        idx = candidate;
        have_start = true;
        break;
      }
      ++candidate;
    }
  }
  if (!have_start) {
    idx = first_after(pos);
    if (idx > 0) --idx;
  }

  const std::size_t last = fill_segments(pos, end, idx, out);
  if (last < n) hint_ = last;  // next sequential lookup starts here
}

void Drt::lookup(common::Offset offset, common::ByteCount size, SegmentVec& out,
                 LookupCursor& cursor) const {
  out.clear();
  if (size == 0) return;
  const common::Offset pos = offset;
  const common::Offset end = offset + size;
  const std::size_t n = entries_.size();
  const FlatEntry* base = entries_.data();

  // Resolve the start entry relative to the cursor.  A batch translate
  // visits offsets in sorted order, so the target is at or a short gallop
  // ahead of the cursor; only a backwards-moving stream pays the full
  // binary search.
  std::size_t idx = 0;
  if (n > 0) {
    const std::size_t c = cursor.index < n ? cursor.index : n - 1;
    if (base[c].o_offset > pos) {
      idx = first_after(pos);
      if (idx > 0) --idx;
    } else {
      // Exponential probe from the cursor: after the loop every entry up to
      // `hi` starts at or before `pos` and the first entry past `pos` lies
      // within the last doubled window — O(log gap) total, two comparisons
      // for the adjacent-request case.
      std::size_t hi = c;
      std::size_t step = 1;
      while (hi + step < n && base[hi + step].o_offset <= pos) {
        hi += step;
        step <<= 1;
      }
      std::size_t lo = hi;
      std::size_t len = std::min(step, n - hi);
      while (len > 0) {  // branchless lower bound inside the window
        const std::size_t half = len >> 1;
        const bool le = base[lo + half].o_offset <= pos;
        lo = le ? lo + half + 1 : lo;
        len = le ? len - half - 1 : half;
      }
      idx = lo - 1;  // base[hi].o_offset <= pos, so lo >= hi + 1 >= 1
    }
  }

  const std::size_t last = fill_segments(pos, end, idx, out);
  cursor.index = last < n ? last : idx;
}

void Drt::mark_dirty(common::Offset offset, common::ByteCount size) {
  if (size == 0 || entries_.empty()) return;
  const common::Offset end = offset + size;
  std::size_t idx = first_after(offset);
  if (idx > 0) --idx;
  for (; idx < entries_.size() && entries_[idx].o_offset < end; ++idx) {
    if (entries_[idx].o_end() > offset) entries_[idx].dirty = 1;
  }
}

std::size_t Drt::dirty_entries() const {
  std::size_t n = 0;
  for (const FlatEntry& e : entries_) n += e.dirty;
  return n;
}

std::vector<DrtSegment> Drt::lookup(common::Offset offset, common::ByteCount size) const {
  SegmentVec scratch;
  lookup(offset, size, scratch);
  return std::vector<DrtSegment>(scratch.begin(), scratch.end());
}

std::size_t Drt::metadata_bytes() const {
  std::size_t total = 0;
  for (const FlatEntry& e : entries_) {
    total += sizeof(DrtEntry) + region_names_[e.region].size();
    if (e.replica != kNoRegion) total += region_names_[e.replica].size();
  }
  return total;
}

std::vector<DrtEntry> Drt::entries() const {
  std::vector<DrtEntry> out;
  out.reserve(entries_.size());
  for (const FlatEntry& e : entries_) {
    DrtEntry entry{e.o_offset, e.length, region_names_[e.region], e.r_offset, e.dirty != 0};
    if (e.replica != kNoRegion) entry.replica_file = region_names_[e.replica];
    out.push_back(std::move(entry));
  }
  return out;
}

common::Status Drt::save(kv::KvStore& store) const {
  char key[128];
  char value[320];
  for (const FlatEntry& e : entries_) {
    std::snprintf(key, sizeof(key), "%s#%020" PRIu64, o_file_.c_str(), e.o_offset);
    // The replica column rides as an optional fourth field; unreplicated
    // entries keep the original three-field record byte-identical, so old
    // stores load and old records parse unchanged.
    if (e.replica != kNoRegion) {
      std::snprintf(value, sizeof(value), "%" PRIu64 ",%s,%" PRIu64 ",%s", e.length,
                    region_names_[e.region].c_str(), e.r_offset,
                    region_names_[e.replica].c_str());
    } else {
      std::snprintf(value, sizeof(value), "%" PRIu64 ",%s,%" PRIu64, e.length,
                    region_names_[e.region].c_str(), e.r_offset);
    }
    MHA_RETURN_IF_ERROR(store.put(key, value));
  }
  return common::Status::ok();
}

common::Result<Drt> Drt::load(kv::KvStore& store, const std::string& o_file) {
  Drt drt(o_file);
  const std::string prefix = o_file + "#";
  common::Status status = common::Status::ok();
  store.for_each([&](std::string_view key, std::string_view value) {
    if (key.substr(0, prefix.size()) != prefix) return true;
    DrtEntry entry;
    char r_file[128] = {0};
    char replica[128] = {0};
    const int fields = std::sscanf(std::string(value).c_str(),
                                   "%" SCNu64 ",%127[^,],%" SCNu64 ",%127[^,]",
                                   &entry.length, r_file, &entry.r_offset, replica);
    if (std::sscanf(std::string(key).c_str() + prefix.size(), "%" SCNu64,
                    &entry.o_offset) != 1 ||
        fields < 3) {
      status = common::Status::corruption("DRT: bad persisted entry: " + std::string(key));
      return false;
    }
    entry.r_file = r_file;
    if (fields == 4) entry.replica_file = replica;
    status = drt.insert(std::move(entry));
    return status.is_ok();
  });
  if (!status.is_ok()) return status;
  return drt;
}

}  // namespace mha::core
