#include "core/drt.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace mha::core {

common::Status Drt::insert(DrtEntry entry) {
  if (entry.length == 0) {
    return common::Status::invalid_argument("DRT: zero-length entry");
  }
  if (entry.r_file.empty()) {
    return common::Status::invalid_argument("DRT: entry without region file");
  }
  const common::Offset start = entry.o_offset;
  const common::Offset end = start + entry.length;
  // Overlap checks against the neighbour on each side.
  auto next = entries_.lower_bound(start);
  if (next != entries_.end() && next->first < end) {
    return common::Status::already_exists("DRT: overlapping entry at offset " +
                                          std::to_string(next->first));
  }
  if (next != entries_.begin()) {
    auto prev = std::prev(next);
    if (prev->second.o_offset + prev->second.length > start) {
      return common::Status::already_exists("DRT: overlapping entry at offset " +
                                            std::to_string(prev->first));
    }
  }
  covered_bytes_ += entry.length;
  entries_.emplace(start, std::move(entry));
  return common::Status::ok();
}

std::vector<DrtSegment> Drt::lookup(common::Offset offset, common::ByteCount size) const {
  std::vector<DrtSegment> out;
  if (size == 0) return out;
  // Entry-count heuristic: a request spanning `size` bytes over entries
  // averaging covered/size() bytes splits into about size/avg redirected
  // pieces plus edge gaps.  Capped so a huge request cannot pre-claim an
  // unbounded buffer.
  if (!entries_.empty()) {
    const common::ByteCount avg =
        std::max<common::ByteCount>(covered_bytes_ / entries_.size(), 1);
    out.reserve(std::min<std::size_t>(static_cast<std::size_t>(size / avg) + 2, 64));
  }
  common::Offset pos = offset;
  const common::Offset end = offset + size;

  // Resolve the start entry from the cached hint when the previous lookup
  // ended at (or one entry before) `pos` — the sequential replay pattern —
  // falling back to the O(log n) tree search otherwise.  The starting
  // position is "the last entry with o_offset <= pos" either way.
  auto it = entries_.end();
  bool have_start = false;
  if (hint_valid_) {
    auto candidate = hint_;
    for (int steps = 0; steps < 2 && candidate != entries_.end(); ++steps) {
      if (candidate->first <= pos) {
        auto next = std::next(candidate);
        if (next == entries_.end() || next->first > pos) {
          it = candidate;
          have_start = true;
          break;
        }
        candidate = next;
      } else {
        break;
      }
    }
  }
  if (!have_start) {
    it = entries_.upper_bound(pos);
    if (it != entries_.begin()) --it;
  }
  while (pos < end) {
    // Skip entries entirely before `pos`.
    while (it != entries_.end() && it->second.o_offset + it->second.length <= pos) ++it;
    if (it == entries_.end() || it->second.o_offset >= end) {
      // Tail gap: passthrough to the original file.
      out.push_back(DrtSegment{false, {}, pos, end - pos, pos});
      break;
    }
    const DrtEntry& e = it->second;
    if (e.o_offset > pos) {
      // Gap before the next entry.
      out.push_back(DrtSegment{false, {}, pos, e.o_offset - pos, pos});
      pos = e.o_offset;
    }
    const common::Offset piece_end = std::min<common::Offset>(end, e.o_offset + e.length);
    DrtSegment seg;
    seg.redirected = true;
    seg.r_file = e.r_file;
    seg.target_offset = e.r_offset + (pos - e.o_offset);
    seg.length = piece_end - pos;
    seg.logical_offset = pos;
    out.push_back(std::move(seg));
    pos = piece_end;
    hint_ = it;  // last consumed entry: the next sequential lookup starts here
    hint_valid_ = true;
    ++it;
  }
  return out;
}

std::size_t Drt::metadata_bytes() const {
  std::size_t total = 0;
  for (const auto& [off, e] : entries_) {
    total += sizeof(DrtEntry) + e.r_file.size();
  }
  return total;
}

std::vector<DrtEntry> Drt::entries() const {
  std::vector<DrtEntry> out;
  out.reserve(entries_.size());
  for (const auto& [off, e] : entries_) out.push_back(e);
  return out;
}

common::Status Drt::save(kv::KvStore& store) const {
  char key[128];
  char value[192];
  for (const auto& [off, e] : entries_) {
    std::snprintf(key, sizeof(key), "%s#%020" PRIu64, o_file_.c_str(), off);
    std::snprintf(value, sizeof(value), "%" PRIu64 ",%s,%" PRIu64, e.length,
                  e.r_file.c_str(), e.r_offset);
    MHA_RETURN_IF_ERROR(store.put(key, value));
  }
  return common::Status::ok();
}

common::Result<Drt> Drt::load(kv::KvStore& store, const std::string& o_file) {
  Drt drt(o_file);
  const std::string prefix = o_file + "#";
  common::Status status = common::Status::ok();
  store.for_each([&](std::string_view key, std::string_view value) {
    if (key.substr(0, prefix.size()) != prefix) return true;
    DrtEntry entry;
    char r_file[128] = {0};
    if (std::sscanf(std::string(key).c_str() + prefix.size(), "%" SCNu64,
                    &entry.o_offset) != 1 ||
        std::sscanf(std::string(value).c_str(), "%" SCNu64 ",%127[^,],%" SCNu64,
                    &entry.length, r_file, &entry.r_offset) != 3) {
      status = common::Status::corruption("DRT: bad persisted entry: " + std::string(key));
      return false;
    }
    entry.r_file = r_file;
    status = drt.insert(std::move(entry));
    return status.is_ok();
  });
  if (!status.is_ok()) return status;
  return drt;
}

}  // namespace mha::core
