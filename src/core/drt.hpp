// The Data Reordering Table of §III-E.
//
// Tracks where each byte range of the original file now lives: "Each entry
// in DRT includes five important variables. O_file and O_offset are the file
// name and the offset of the data in the original file, R_file and R_offset
// are the file name and the offset of the data in the reordered region.
// Length is the size of the data."
//
// One Drt instance covers one original file (so O_file is held once).  The
// entries form a non-overlapping interval map over the original file's
// offsets, stored as a *flat sorted vector* of POD entries with region-file
// names interned into an id table — the request hot path never touches a
// tree node or copies a string.  Lookups split a request into redirected
// segments, with uncovered gaps returned as passthrough segments so
// partially-reordered files keep working.  Persistence goes through the KV
// store (the Berkeley DB stand-in) with one record per entry.
//
// THREAD-SAFETY RULE (the one place it is documented): a Drt instance — and
// everything layered on it (Redirector, OnlineMha, MpiFile, HybridPfs) — is
// a single-client object.  lookup() mutates a sequential-access hint under
// const, so concurrent lookups must use distinct instances; the parallel
// bench grids satisfy this by giving every cell its own deployment.  The
// hint is a plain index into the flat vector, so copies and moves inherit it
// safely (a stale index is only ever a cache miss, never a dangling
// iterator) and all special members are the defaults.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "common/small_vec.hpp"
#include "common/types.hpp"
#include "kv/kvstore.hpp"

namespace mha::core {

/// Index into a Drt's interned region-file name table.
using RegionId = std::uint32_t;

/// Region id carried by passthrough (gap) segments.
inline constexpr RegionId kNoRegion = static_cast<RegionId>(-1);

/// The public exchange form of one table entry (insert/entries/persistence).
struct DrtEntry {
  common::Offset o_offset = 0;      ///< start in the original file
  common::ByteCount length = 0;
  std::string r_file;               ///< reordered region file name
  common::Offset r_offset = 0;      ///< start in the region file
  /// Runtime-only flag (not persisted): the region copy has been overwritten
  /// through the redirector since migration, so the original file's bytes
  /// for this range are stale and must not be used as a repair source.
  bool dirty = false;
  /// Failover copy of the region this entry points into ("" = unreplicated).
  /// Persisted: a replica recorded in the DRT survives restarts with it.
  std::string replica_file;

  friend bool operator==(const DrtEntry&, const DrtEntry&) = default;
};

/// One piece of a translated request.  POD: the region file is named by its
/// interned id (resolve via Drt::region_name / a Redirector's file-id table).
struct DrtSegment {
  bool redirected = false;          ///< false => read/write the original file
  RegionId region = kNoRegion;      ///< kNoRegion for passthrough
  common::Offset target_offset = 0; ///< offset in the region (or the original)
  common::ByteCount length = 0;
  common::Offset logical_offset = 0;  ///< position within the original file
  /// Interned id of the region's failover replica file (kNoRegion when the
  /// region is unreplicated or the segment is passthrough).  Rides along in
  /// the same POD so replica-aware callers pay no extra lookup.
  RegionId replica = kNoRegion;
};

class Drt {
 public:
  /// Caller-owned lookup scratch: inline room for the common split widths,
  /// heap spill (retained across clear) beyond that.
  using SegmentVec = common::SmallVec<DrtSegment, 8>;

  Drt() = default;
  explicit Drt(std::string o_file) : o_file_(std::move(o_file)) {}

  const std::string& o_file() const { return o_file_; }

  /// Inserts an entry; rejects zero-length and ranges overlapping an
  /// existing entry ("DRT is updated each time a data location has been
  /// changed" — locations are unique).  Appends are O(1); out-of-order
  /// inserts shift the flat tail (build-time cost only).
  common::Status insert(DrtEntry entry);

  /// Splits [offset, offset+size) into contiguous segments covering it
  /// exactly, in ascending logical order, appending into the caller's
  /// scratch (cleared first).  Redirected pieces point into region files;
  /// gaps come back as passthrough (target_offset == logical offset in the
  /// original file).  Zero heap allocations once `out` has warmed up.
  ///
  /// Caches the index of the last-hit entry so sequential access patterns
  /// (the common replay case) resolve their start point in O(1) instead of
  /// O(log n).  See the thread-safety rule in the header comment.
  void lookup(common::Offset offset, common::ByteCount size, SegmentVec& out) const;

  /// Convenience wrapper for tests and build-time callers.
  std::vector<DrtSegment> lookup(common::Offset offset, common::ByteCount size) const;

  /// Caller-owned position for a batch of lookups.  The per-instance hint_
  /// remembers only the single last lookup, so interleaved streams (or a
  /// batch translate restarted from offset 0 every iteration) degrade to the
  /// binary-search path.  A cursor pins the position to *one* offset-sorted
  /// stream: lookup(..., cursor) resolves the start entry by galloping
  /// forward from the cursor's index (O(log gap), O(1) for adjacent
  /// requests) and falls back to binary search only when the stream moved
  /// backwards.  Value-semantic and trivially copyable; a stale cursor is
  /// only ever a cache miss.
  struct LookupCursor {
    std::size_t index = 0;
  };

  /// lookup() with a caller-owned cursor instead of the shared hint.  Batch
  /// translates sort their requests by offset and walk one cursor across
  /// them, so every request after the first resolves its start entry on the
  /// sequential path.
  void lookup(common::Offset offset, common::ByteCount size, SegmentVec& out,
              LookupCursor& cursor) const;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Interned region-file name table.  Replica files are interned in the
  /// same table (they are resolved to file ids by the same Redirector pass),
  /// so region_count() includes them; replica_of_region() tells them apart.
  std::size_t region_count() const { return region_names_.size(); }
  const std::string& region_name(RegionId id) const { return region_names_[id]; }

  /// Records `replica_file` as the failover copy of region `r_file`: the
  /// replica name is interned and stamped into the replica column of every
  /// entry pointing into that region.  The replica shares the region's
  /// logical byte space (byte k of the region == byte k of the replica).
  common::Status set_replica(const std::string& r_file, const std::string& replica_file);

  /// Interned replica of a region; kNoRegion when unreplicated.
  RegionId replica_of_region(RegionId region) const {
    return region < region_replica_.size() ? region_replica_[region] : kNoRegion;
  }

  /// Renames an interned region (or replica) file in place — the rebuild
  /// retarget: every entry referencing the id now resolves to `new_name`,
  /// with no entry rewrite.  Fails when `old_name` is unknown or `new_name`
  /// is already interned.
  common::Status retarget_region(const std::string& old_name, const std::string& new_name);

  /// Total bytes covered by entries (tracked incrementally; O(1)).
  common::ByteCount covered_bytes() const { return covered_bytes_; }

  /// Marks every entry overlapping [offset, offset+size) dirty: its region
  /// bytes have diverged from the original file (see DrtEntry::dirty).
  /// Called by the redirector on every intercepted write; O(entries touched)
  /// and allocation-free, so the request hot path stays zero-alloc.
  void mark_dirty(common::Offset offset, common::ByteCount size);

  /// Number of dirty entries (scrub/bench introspection).
  std::size_t dirty_entries() const;

  /// Approximate metadata footprint (for §V-E.2's space analysis): the paper
  /// charges 6*4 bytes per entry; ours charges the exchange-entry size plus
  /// the region name per entry, matching what save() persists.  (The
  /// in-memory flat entry is smaller — names are stored once.)
  std::size_t metadata_bytes() const;

  /// Entries in ascending o_offset order (exchange form, names resolved).
  std::vector<DrtEntry> entries() const;

  /// Persists every entry under keys "<o_file>#<o_offset>".
  common::Status save(kv::KvStore& store) const;

  /// Rebuilds a table for `o_file` from a store previously filled by save().
  static common::Result<Drt> load(kv::KvStore& store, const std::string& o_file);

 private:
  /// In-memory entry: POD, 40 bytes, names interned.
  struct FlatEntry {
    common::Offset o_offset = 0;
    common::ByteCount length = 0;
    common::Offset r_offset = 0;
    RegionId region = 0;
    RegionId replica = kNoRegion;  ///< failover copy; see DrtEntry::replica_file
    std::uint8_t dirty = 0;  ///< fits the trailing padding; see DrtEntry::dirty

    common::Offset o_end() const { return o_offset + length; }
  };

  /// First index whose o_offset is > pos (branchless binary search).
  std::size_t first_after(common::Offset pos) const;

  /// Emits the segments of [pos, end) starting the entry walk at `idx` (the
  /// last entry with o_offset <= pos, or 0/n when none); returns the index
  /// of the last entry consumed (n when the range fell entirely in a gap).
  /// The shared body of both lookup() flavours.
  std::size_t fill_segments(common::Offset pos, common::Offset end, std::size_t idx,
                            SegmentVec& out) const;

  RegionId intern(const std::string& name);

  std::string o_file_;
  // Ascending o_offset; invariant: non-overlapping.
  std::vector<FlatEntry> entries_;
  std::vector<std::string> region_names_;
  std::unordered_map<std::string, RegionId> region_ids_;  // insert-time only
  /// RegionId -> interned replica id (kNoRegion), index-parallel with
  /// region_names_ (grown by intern).
  std::vector<RegionId> region_replica_;
  common::ByteCount covered_bytes_ = 0;
  // Sequential-lookup cache: index of the last entry the previous lookup
  // consumed.  Mutated under const (see header comment); always validated
  // against the current vector before use, so stale values are harmless.
  mutable std::size_t hint_ = 0;
};

}  // namespace mha::core
