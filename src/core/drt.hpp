// The Data Reordering Table of §III-E.
//
// Tracks where each byte range of the original file now lives: "Each entry
// in DRT includes five important variables. O_file and O_offset are the file
// name and the offset of the data in the original file, R_file and R_offset
// are the file name and the offset of the data in the reordered region.
// Length is the size of the data."
//
// One Drt instance covers one original file (so O_file is held once).  The
// entries form a non-overlapping interval map over the original file's
// offsets; lookups split a request into redirected segments, with uncovered
// gaps returned as passthrough segments so partially-reordered files keep
// working.  Persistence goes through the KV store (the Berkeley DB stand-in)
// with one record per entry.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "kv/kvstore.hpp"

namespace mha::core {

struct DrtEntry {
  common::Offset o_offset = 0;      ///< start in the original file
  common::ByteCount length = 0;
  std::string r_file;               ///< reordered region file name
  common::Offset r_offset = 0;      ///< start in the region file

  friend bool operator==(const DrtEntry&, const DrtEntry&) = default;
};

/// One piece of a translated request.
struct DrtSegment {
  bool redirected = false;          ///< false => read/write the original file
  std::string r_file;               ///< empty for passthrough
  common::Offset target_offset = 0; ///< offset in r_file (or the original)
  common::ByteCount length = 0;
  common::Offset logical_offset = 0;  ///< position within the original file
};

class Drt {
 public:
  Drt() = default;
  explicit Drt(std::string o_file) : o_file_(std::move(o_file)) {}

  // The lookup hint below is an iterator into entries_; copies and moves
  // must not inherit it, so the special members drop it explicitly.
  Drt(const Drt& other)
      : o_file_(other.o_file_), entries_(other.entries_),
        covered_bytes_(other.covered_bytes_) {}
  Drt& operator=(const Drt& other) {
    o_file_ = other.o_file_;
    entries_ = other.entries_;
    covered_bytes_ = other.covered_bytes_;
    hint_valid_ = false;
    return *this;
  }
  Drt(Drt&& other) noexcept
      : o_file_(std::move(other.o_file_)), entries_(std::move(other.entries_)),
        covered_bytes_(other.covered_bytes_) {
    other.hint_valid_ = false;
  }
  Drt& operator=(Drt&& other) noexcept {
    o_file_ = std::move(other.o_file_);
    entries_ = std::move(other.entries_);
    covered_bytes_ = other.covered_bytes_;
    hint_valid_ = false;
    other.hint_valid_ = false;
    return *this;
  }

  const std::string& o_file() const { return o_file_; }

  /// Inserts an entry; rejects zero-length and ranges overlapping an
  /// existing entry ("DRT is updated each time a data location has been
  /// changed" — locations are unique).
  common::Status insert(DrtEntry entry);

  /// Splits [offset, offset+size) into contiguous segments covering it
  /// exactly, in ascending logical order.  Redirected pieces point into
  /// region files; gaps come back as passthrough (target_offset == logical
  /// offset in the original file).
  ///
  /// Caches the last-hit entry so sequential access patterns (the common
  /// replay case) resolve their start point in O(1) instead of O(log n).
  /// The cache makes lookup non-thread-safe despite being const: concurrent
  /// lookups must use distinct Drt instances (as the parallel bench cells
  /// do — each cell owns its deployment).
  std::vector<DrtSegment> lookup(common::Offset offset, common::ByteCount size) const;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Total bytes covered by entries (tracked incrementally; O(1)).
  common::ByteCount covered_bytes() const { return covered_bytes_; }

  /// Approximate in-memory/metadata footprint (for §V-E.2's space analysis):
  /// the paper charges 6*4 bytes per entry; ours stores the region name too.
  std::size_t metadata_bytes() const;

  /// Entries in ascending o_offset order.
  std::vector<DrtEntry> entries() const;

  /// Persists every entry under keys "<o_file>#<o_offset>".
  common::Status save(kv::KvStore& store) const;

  /// Rebuilds a table for `o_file` from a store previously filled by save().
  static common::Result<Drt> load(kv::KvStore& store, const std::string& o_file);

 private:
  std::string o_file_;
  // o_offset -> entry; invariant: non-overlapping.
  std::map<common::Offset, DrtEntry> entries_;
  common::ByteCount covered_bytes_ = 0;
  // Sequential-lookup cache: the last entry the previous lookup consumed.
  // Mutated under const (see lookup docs); never inherited by copies.
  mutable std::map<common::Offset, DrtEntry>::const_iterator hint_;
  mutable bool hint_valid_ = false;
};

}  // namespace mha::core
