#include "core/online.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "common/stats.hpp"

namespace mha::core {

namespace {
/// Fixed signature width: size buckets 2^0 .. 2^31 cover every realistic
/// request size and keep signatures comparable across windows.
constexpr std::size_t kSignatureBuckets = 32;
}  // namespace

PatternSignature PatternSignature::of(const std::vector<trace::TraceRecord>& records) {
  PatternSignature sig;
  sig.size_shares.assign(kSignatureBuckets, 0.0);
  if (records.empty()) return sig;
  std::size_t writes = 0;
  for (const trace::TraceRecord& r : records) {
    const std::size_t bucket =
        std::min(common::SizeHistogram::bucket_of(r.size), kSignatureBuckets - 1);
    sig.size_shares[bucket] += 1.0;
    if (r.op == common::OpType::kWrite) ++writes;
  }
  for (double& share : sig.size_shares) share /= static_cast<double>(records.size());
  sig.write_fraction = static_cast<double>(writes) / static_cast<double>(records.size());
  return sig;
}

double PatternSignature::distance(const PatternSignature& other) const {
  double d = std::abs(write_fraction - other.write_fraction);
  const std::size_t n = std::max(size_shares.size(), other.size_shares.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double a = i < size_shares.size() ? size_shares[i] : 0.0;
    const double b = i < other.size_shares.size() ? other.size_shares[i] : 0.0;
    d += std::abs(a - b);
  }
  return d;
}

common::Result<std::unique_ptr<OnlineMha>> OnlineMha::create(pfs::HybridPfs& pfs,
                                                             std::string file_name,
                                                             OnlineOptions options) {
  auto id = pfs.open(file_name);
  if (!id.is_ok()) return id.status();
  auto online = std::unique_ptr<OnlineMha>(
      new OnlineMha(pfs, std::move(file_name), std::move(options)));
  online->original_id_ = *id;
  return online;
}

void OnlineMha::translate(common::Offset offset, common::ByteCount size,
                          io::SegmentList& out) {
  if (redirector_ != nullptr) {
    redirector_->translate(offset, size, out);
    return;
  }
  out.clear();
  out.push_back(io::RedirectSegment{original_id_, offset, size, offset});
}

common::Seconds OnlineMha::lookup_overhead() const {
  return redirector_ != nullptr ? redirector_->lookup_overhead() : 0.0;
}

void OnlineMha::observe(const trace::TraceRecord& record) {
  ++observed_;
  window_.push_back(record);
  // Keep only the most recent window (simple ring via erase-from-front in
  // bulk to stay amortised O(1)).
  if (window_.size() > 2 * options_.window) {
    window_.erase(window_.begin(),
                  window_.begin() + static_cast<long>(window_.size() - options_.window));
  }
}

common::Result<bool> OnlineMha::maybe_adapt() {
  if (window_.size() < std::max(options_.min_records, std::size_t{1})) return false;
  std::vector<trace::TraceRecord> recent(
      window_.end() - static_cast<long>(std::min(options_.window, window_.size())),
      window_.end());
  const PatternSignature now = PatternSignature::of(recent);
  if (has_plan_ && now.distance(planned_for_) < options_.drift_threshold) {
    return false;
  }
  MHA_RETURN_IF_ERROR(adapt_now());
  return true;
}

common::Status OnlineMha::roll_back() {
  if (redirector_ == nullptr) return common::Status::ok();
  auto original = pfs_->open(file_name_);
  if (!original.is_ok()) return original.status();

  const std::vector<DrtEntry> entries = redirector_->drt().entries();
  std::vector<std::string> regions;
  for (const DrtEntry& entry : entries) {
    if (std::find(regions.begin(), regions.end(), entry.r_file) == regions.end()) {
      regions.push_back(entry.r_file);
    }
  }

  // When journaling is on, record the fold-back (regions with their layout
  // widths + every copy) before touching a byte, so a crash mid-fold-back
  // recovers by re-running the idempotent region -> original copies.
  fault::MigrationJournal journal;
  const auto crash_at = [&](std::string_view point) {
    return options_.mha.crash_at && options_.mha.crash_at(point);
  };
  if (!options_.mha.journal_path.empty()) {
    MHA_RETURN_IF_ERROR(journal.open(options_.mha.journal_path));
    if (journal.active()) {
      return common::Status::failed_precondition(
          "online: journal holds an unresolved migration (phase " +
          std::string(fault::to_string(journal.phase())) +
          "); run core::recover_migration first");
    }
    std::vector<fault::JournalRegion> journal_regions;
    journal_regions.reserve(regions.size());
    for (const std::string& name : regions) {
      auto id = pfs_->open(name);
      if (!id.is_ok()) return id.status();
      journal_regions.push_back(
          fault::JournalRegion{name, pfs_->mds().info(*id).layout.widths()});
    }
    std::vector<fault::JournalEntry> journal_entries;
    journal_entries.reserve(entries.size());
    for (const DrtEntry& entry : entries) {
      journal_entries.push_back(
          fault::JournalEntry{entry.o_offset, entry.length, entry.r_file, entry.r_offset});
    }
    MHA_RETURN_IF_ERROR(journal.begin_foldback(file_name_, std::move(journal_regions),
                                               std::move(journal_entries)));
  }
  if (crash_at("foldback-begun")) {
    return common::Status::io_error("injected crash at foldback-begun");
  }

  constexpr common::ByteCount kChunk = 4 * 1024 * 1024;
  std::vector<std::uint8_t> buffer;
  common::Seconds clock = 0.0;
  for (const DrtEntry& entry : entries) {
    auto region = pfs_->open(entry.r_file);
    if (!region.is_ok()) return region.status();
    common::ByteCount moved = 0;
    while (moved < entry.length) {
      const common::ByteCount piece = std::min<common::ByteCount>(kChunk, entry.length - moved);
      buffer.resize(piece);
      auto r = pfs_->read(*region, entry.r_offset + moved, buffer.data(), piece, clock);
      if (!r.is_ok()) return r.status();
      auto w = pfs_->write(*original, entry.o_offset + moved, buffer.data(), piece,
                           r->completion);
      if (!w.is_ok()) return w.status();
      clock = w->completion;
      moved += piece;
    }
  }
  if (crash_at("foldback-copied")) {
    return common::Status::io_error("injected crash at foldback-copied");
  }
  redirector_.reset();
  for (const std::string& region : regions) {
    MHA_RETURN_IF_ERROR(pfs_->remove(region));
  }
  if (journal.is_open()) {
    MHA_RETURN_IF_ERROR(journal.clear());
    MHA_RETURN_IF_ERROR(journal.close());
  }
  return common::Status::ok();
}

common::Status OnlineMha::adapt_now() {
  if (window_.empty()) return common::Status::failed_precondition("online: nothing observed");
  std::vector<trace::TraceRecord> recent(
      window_.end() - static_cast<long>(std::min(options_.window, window_.size())),
      window_.end());

  // Step 1: fold the current layout back so the original file is whole.
  MHA_RETURN_IF_ERROR(roll_back());

  // Steps 2-4: plan on the fresh window, place into versioned regions, swap.
  trace::Trace trace;
  trace.file_name = file_name_;
  trace.records = std::move(recent);

  MhaOptions options = options_.mha;
  options.reorganizer.region_suffix = ".mha.v" + std::to_string(++version_) + ".r";
  auto deployment = MhaPipeline::deploy(*pfs_, trace, options);
  if (!deployment.is_ok()) return deployment.status();

  redirector_ = std::move(deployment->redirector);
  planned_for_ = PatternSignature::of(trace.records);
  has_plan_ = true;
  ++adaptations_;
  MHA_INFO << "online: adapted to new pattern (v" << version_ << ", "
           << deployment->plan.plan.regions.size() << " regions)";
  return common::Status::ok();
}

}  // namespace mha::core
