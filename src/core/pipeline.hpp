// The end-to-end MHA workflow of Fig. 6.
//
//   tracing       -> io::Tracer while the application runs (phase 1)
//   reordering    -> concurrency annotation + Algorithm 1 + Reorganizer
//   determination -> CostModel (Eq. 2) + RSSD (Algorithm 2) per region
//   placement     -> Placer: region files + data migration + RST
//   redirection   -> Redirector attached to the application's MpiFile
//
// `analyze` covers the off-line phases 2-3 (pure planning, no PFS side
// effects); `deploy` also applies phase 4 and constructs the phase-5
// redirector.  Plans can optionally be persisted (DRT to the KV store),
// matching §IV-A.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "core/grouping.hpp"
#include "core/placer.hpp"
#include "core/redirector.hpp"
#include "core/reorganizer.hpp"
#include "core/rssd.hpp"
#include "trace/analysis.hpp"

namespace mha::core {

struct MhaOptions {
  GroupingOptions grouping;
  RssdOptions rssd;
  trace::AnalysisOptions analysis;
  ReorganizerOptions reorganizer;
  /// The paper's concurrency extension over HARL's model (ablation knob).
  bool concurrency_aware = true;
  /// Virtual cost charged per redirected request (DRT hash lookup).
  common::Seconds redirect_lookup_overhead = 2.0e-6;
  /// When non-empty, the DRT is persisted to this KV file during deploy.
  std::string drt_path;
  /// When non-empty, placement (and OnlineMha's fold-back) runs through a
  /// phase-stamped migration journal at this KV file, making a crash at any
  /// point recoverable via core::recover_migration.  deploy() refuses to
  /// start while the journal holds an unresolved migration.
  std::string journal_path;
  /// Test hook forwarded to the Placer (see core::ApplyOptions::crash_at).
  std::function<bool(std::string_view)> crash_at;
  /// Heterogeneity-aware replication at placement time (repair tentpole):
  /// every hot (h > 0) region gets a secondary copy on a cost-model-chosen
  /// SServer, recorded in the DRT's replica column and registered with the
  /// pfs failover table by the redirection phase.  Off by default — existing
  /// deployments stay byte-identical.
  bool replicate_hot = false;
};

/// Output of the planning phases (2-3).
struct MhaPlan {
  ReorganizePlan plan;
  /// Optimized <h, s> per region, aligned with plan.regions.
  std::vector<StripePair> stripe_pairs;
  GroupingResult grouping;
  /// Cost-model totals per region at the chosen pair (diagnostics).
  std::vector<double> region_costs;

  std::string to_string() const;
};

/// A deployed MHA layout: the plan, what placement did, and the runtime
/// redirector to attach to the application's file handle.
struct MhaDeployment {
  MhaPlan plan;
  PlacementReport placement;
  std::unique_ptr<Redirector> redirector;
};

class MhaPipeline {
 public:
  /// Phases 2-3: group the traced requests, build regions + DRT, optimize
  /// per-region stripe pairs.  No PFS mutation.
  static common::Result<MhaPlan> analyze(const sim::ClusterConfig& cluster,
                                         const trace::Trace& trace,
                                         const MhaOptions& options = {});

  /// Phases 2-5 end to end against a live PFS holding the original file.
  static common::Result<MhaDeployment> deploy(pfs::HybridPfs& pfs,
                                              const trace::Trace& trace,
                                              const MhaOptions& options = {});
};

}  // namespace mha::core
