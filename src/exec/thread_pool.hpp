// Deterministic host-side parallelism for benches and the planning pipeline.
//
// A fixed-size pool with fork-join primitives designed around one invariant:
// a multi-threaded run must produce *byte-identical* results to a
// single-threaded one.  Three rules make that hold:
//
//   1. Results land by index, never by completion order: `parallel_map`
//      writes task i's result into slot i, and reductions over the results
//      happen on the calling thread in ascending index order.
//   2. Tasks must not share mutable state; anything stochastic derives its
//      own RNG stream from the task index via `stream_seed` so the random
//      sequence a task sees is a function of (base seed, index) only.
//   3. The calling thread participates in the batch it forked (help-first
//      join), so nested parallel_for from inside a worker can never
//      deadlock and `threads == 1` degenerates to a plain serial loop.
//
// The pool is *not* a general task graph: batches are bulk-synchronous
// (fork, everyone drains one atomic index counter, join).  That is exactly
// what the bench grids, the per-region RSSD loop, and the k-means
// assignment step need, and it keeps the determinism argument auditable.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace mha::exec {

class ThreadPool {
 public:
  /// A pool of total concurrency `threads` (the caller counts as one of
  /// them: `threads` workers are `threads - 1` std::threads plus the thread
  /// that joins each batch).  `threads <= 1` spawns nothing and runs every
  /// batch inline.  0 is normalised to 1.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (callers + workers), >= 1.
  std::size_t thread_count() const { return threads_; }

  /// Runs fn(0) .. fn(n-1), blocking until all complete.  Tasks may run on
  /// any thread in any order; the caller participates.  If one or more
  /// tasks throw, indices not yet started are skipped and the first
  /// captured exception is rethrown after the batch drains.  Safe to call
  /// from inside a task (the nested batch is drained by its own caller).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// parallel_for that collects fn's return values in index order.
  template <typename F>
  auto parallel_map(std::size_t n, F&& fn) -> std::vector<decltype(fn(std::size_t{0}))> {
    using T = decltype(fn(std::size_t{0}));
    std::vector<std::optional<T>> slots(n);
    parallel_for(n, [&](std::size_t i) { slots[i].emplace(fn(i)); });
    std::vector<T> out;
    out.reserve(n);
    for (auto& slot : slots) out.push_back(std::move(*slot));
    return out;
  }

 private:
  struct Batch;
  static void run_batch(Batch& batch);
  void worker_loop();

  std::size_t threads_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  bool stopping_ = false;
};

/// The process-wide pool used by the pipeline, RSSD, grouping and the bench
/// harness.  Sized on first use from MHA_THREADS (when set and positive) or
/// std::thread::hardware_concurrency().  Thread-safe.
ThreadPool& default_pool();

/// Rebuilds the default pool at `threads` total concurrency (the --threads
/// bench flag and the determinism tests).  Must not be called while another
/// thread is using the default pool.
void set_default_threads(std::size_t threads);

/// The concurrency default_pool() currently has (or would be created with).
std::size_t default_threads();

/// Derives the RNG stream for task `index` of a computation seeded with
/// `base`: a splitmix64-style mix, so neighbouring indices get uncorrelated
/// streams and the result is independent of which thread runs the task.
std::uint64_t stream_seed(std::uint64_t base, std::uint64_t index);

}  // namespace mha::exec
