#include "exec/thread_pool.hpp"

#include <cstdlib>

namespace mha::exec {

// One fork-join batch.  Every index in [0, n) is claimed exactly once via
// `next`; claimed indices count towards `completed` whether they ran or were
// skipped after an abort, so `completed == n` is an unconditional join
// condition for the caller.
struct ThreadPool::Batch {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<bool> aborted{false};
  std::exception_ptr error;
  std::mutex mutex;
  std::condition_variable done_cv;
};

void ThreadPool::run_batch(Batch& batch) {
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.n) return;
    if (!batch.aborted.load(std::memory_order_relaxed)) {
      try {
        (*batch.fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(batch.mutex);
        if (!batch.error) batch.error = std::current_exception();
        batch.aborted.store(true, std::memory_order_relaxed);
      }
    }
    if (batch.completed.fetch_add(1, std::memory_order_acq_rel) + 1 == batch.n) {
      std::lock_guard<std::mutex> lock(batch.mutex);
      batch.done_cv.notify_all();
    }
  }
}

ThreadPool::ThreadPool(std::size_t threads) : threads_(threads == 0 ? 1 : threads) {
  workers_.reserve(threads_ - 1);
  for (std::size_t i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->fn = &fn;

  // Wake at most one helper per remaining index; the caller is the n-th
  // runner.  Helpers arriving after the batch drained fall straight through
  // (next >= n), so stale queue entries are harmless.
  const std::size_t helpers = std::min(workers_.size(), n - 1);
  if (helpers > 0) {
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      for (std::size_t i = 0; i < helpers; ++i) {
        queue_.emplace_back([batch] { run_batch(*batch); });
      }
    }
    queue_cv_.notify_all();
  }

  run_batch(*batch);
  {
    std::unique_lock<std::mutex> lock(batch->mutex);
    batch->done_cv.wait(lock, [&] {
      return batch->completed.load(std::memory_order_acquire) == batch->n;
    });
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

namespace {

std::size_t env_or_hardware_threads() {
  if (const char* env = std::getenv("MHA_THREADS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && value > 0) return static_cast<std::size_t>(value);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::mutex g_default_mutex;
std::unique_ptr<ThreadPool> g_default_pool;
std::size_t g_default_threads = 0;  // 0 => not resolved yet

}  // namespace

ThreadPool& default_pool() {
  std::lock_guard<std::mutex> lock(g_default_mutex);
  if (!g_default_pool) {
    if (g_default_threads == 0) g_default_threads = env_or_hardware_threads();
    g_default_pool = std::make_unique<ThreadPool>(g_default_threads);
  }
  return *g_default_pool;
}

void set_default_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lock(g_default_mutex);
  g_default_threads = threads == 0 ? 1 : threads;
  g_default_pool.reset();  // rebuilt lazily at the new size
}

std::size_t default_threads() {
  std::lock_guard<std::mutex> lock(g_default_mutex);
  if (g_default_threads == 0) g_default_threads = env_or_hardware_threads();
  return g_default_threads;
}

std::uint64_t stream_seed(std::uint64_t base, std::uint64_t index) {
  std::uint64_t z = base + 0x9E3779B97F4A7C15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace mha::exec
