// Injection point the timing substrate exposes to the fault subsystem.
//
// The simulator stays fault-agnostic: ServerSim only asks two questions when
// admitting work — "when can this server actually start?" (an offline server
// pushes starts past its outage window, making a crash look like an extreme
// straggler to every scheduler's look-ahead) and "how slow is it right now?"
// (a brownout multiplies service time).  Who answers is up to the caller;
// fault::FaultInjector is the shipped implementation.  The hook is consulted
// identically by charge() and predict(), so scheduler predictions remain
// exact under injected faults — the property the hedging machinery relies
// on.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.hpp"

namespace mha::sim {

/// A silent-corruption decision for one write sub-request — the data-plane
/// counterpart of the timing hook below.  The sim never sees these: silent
/// faults by definition complete "successfully" and charge normal time; the
/// PFS client layer draws one per stored sub-extent (from the attached
/// fault::FaultInjector) and applies it to the content plane, where the
/// checksummed extent store can later catch it.
struct WriteFault {
  enum class Kind : std::uint8_t {
    kNone = 0,
    kBitRot,            ///< one byte's bits flip after a complete write
    kTornWrite,         ///< only a prefix of the payload persists
    kMisdirectedWrite,  ///< the payload lands at the wrong physical offset
  };

  Kind kind = Kind::kNone;
  common::ByteCount torn_prefix = 0;  ///< kTornWrite: bytes actually persisted
  common::Offset bit_offset = 0;      ///< kBitRot: absolute physical offset
  std::uint8_t bit_mask = 0x01;       ///< kBitRot: bits to flip
  common::Offset misdirect_to = 0;    ///< kMisdirectedWrite: landing offset
};

class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// Earliest instant >= `arrival` at which server `server` can begin
  /// service (pushes work past crash/offline windows; identity when
  /// healthy).
  virtual common::Seconds earliest_start(std::size_t server,
                                         common::Seconds arrival) const = 0;

  /// Service-time multiplier (>= 1.0) for work starting at `start`
  /// (brownout windows; 1.0 when healthy).
  virtual double service_factor(std::size_t server, common::Seconds start) const = 0;
};

}  // namespace mha::sim
