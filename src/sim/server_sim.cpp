#include "sim/server_sim.hpp"

#include <algorithm>
#include <cstdio>

#include "common/units.hpp"

namespace mha::sim {

common::Seconds ServerSim::service_time(common::OpType op, common::ByteCount bytes) const {
  if (bytes == 0) return 0.0;
  return device_.service_time(op, bytes) + network_.transfer_time(bytes);
}

common::Seconds ServerSim::predict(common::OpType op, common::ByteCount bytes,
                                   common::Seconds arrival) const {
  if (bytes == 0) return arrival;
  common::Seconds start = std::max(arrival, next_free_);
  common::Seconds service = service_time(op, bytes);
  if (next_free_ > arrival) {
    service -= device_.startup(op) * (1.0 - device_.queued_startup_factor);
  }
  if (fault_hook_ != nullptr) {
    start = std::max(start, fault_hook_->earliest_start(fault_index_, start));
    service *= fault_hook_->service_factor(fault_index_, start);
  }
  return start + service;
}

Charge ServerSim::charge(common::OpType op, common::ByteCount bytes,
                         common::Seconds arrival, common::JobId job) {
  Charge c;
  c.op = op;
  c.bytes = bytes;
  c.job = job;
  if (bytes == 0) {
    c.start = c.completion = arrival;
    c.prev_next_free = next_free_;
    c.seq = seq_;
    return c;
  }
  c.start = std::max(arrival, next_free_);
  // A sub-request that found the device busy pays only the discounted
  // (short-seek) share of the startup cost.
  const bool queued = next_free_ > arrival;
  c.service = service_time(op, bytes);
  if (queued) {
    c.service -= device_.startup(op) * (1.0 - device_.queued_startup_factor);
  }
  if (fault_hook_ != nullptr) {
    // An offline server cannot start until its outage ends; a browned-out
    // one serves slower.  Same math as predict(), so look-ahead is exact.
    c.start = std::max(c.start, fault_hook_->earliest_start(fault_index_, c.start));
    c.service *= fault_hook_->service_factor(fault_index_, c.start);
  }
  c.completion = c.start + c.service;
  c.wait = c.start - arrival;
  c.prev_next_free = next_free_;
  c.seq = ++seq_;
  next_free_ = c.completion;

  ++stats_.sub_requests;
  if (op == common::OpType::kRead) {
    stats_.bytes_read += bytes;
  } else {
    stats_.bytes_written += bytes;
  }
  stats_.busy_time += c.service;
  stats_.queue_wait += c.wait;

  // Per-job accounting row (grown once per new job, never in steady state).
  if (job >= job_stats_.size()) job_stats_.resize(job + 1);
  JobServerStats& row = job_stats_[job];
  ++row.sub_requests;
  if (op == common::OpType::kRead) {
    row.bytes_read += bytes;
  } else {
    row.bytes_written += bytes;
  }
  row.busy_time += c.service;
  row.queue_wait += c.wait;
  return c;
}

common::Seconds ServerSim::submit(common::OpType op, common::ByteCount bytes,
                                  common::Seconds arrival, common::JobId job) {
  return charge(op, bytes, arrival, job).completion;
}

void ServerSim::charge_batch(std::span<BatchSubOp> subs) {
  for (BatchSubOp& sub : subs) {
    sub.completion = charge(sub.op, sub.bytes, sub.arrival, sub.job).completion;
  }
}

bool ServerSim::try_cancel(const Charge& c) {
  if (c.bytes == 0) return false;
  // Only the most recent admission is cancellable: a later charge started
  // from (and baked in) this one's completion time.
  if (c.seq != seq_ || next_free_ != c.completion) return false;
  next_free_ = c.prev_next_free;
  --stats_.sub_requests;
  if (c.op == common::OpType::kRead) {
    stats_.bytes_read -= c.bytes;
  } else {
    stats_.bytes_written -= c.bytes;
  }
  stats_.busy_time -= c.service;
  stats_.queue_wait -= c.wait;
  // The job row must release the cancelled charge too, or a lost hedge would
  // leave phantom per-tenant usage behind (the accounting twin of the queue
  // rewind above).
  if (c.job >= job_stats_.size()) return true;  // rows cleared since (reset_stats)
  JobServerStats& row = job_stats_[c.job];
  --row.sub_requests;
  if (c.op == common::OpType::kRead) {
    row.bytes_read -= c.bytes;
  } else {
    row.bytes_written -= c.bytes;
  }
  row.busy_time -= c.service;
  row.queue_wait -= c.wait;
  return true;
}

void ServerSim::note_wasted(common::JobId job, common::ByteCount bytes) {
  stats_.bytes_wasted += bytes;
  if (job >= job_stats_.size()) job_stats_.resize(job + 1);
  job_stats_[job].bytes_wasted += bytes;
}

std::string stats_table_header() {
  return "server  kind     subs     bytes        busy(s)   wait(s)   wait/sub(ms) wasted\n";
}

std::string stats_table_row(std::size_t index, const ServerSim& server) {
  const ServerStats& st = server.stats();
  const double wait_per_sub =
      st.sub_requests > 0 ? st.queue_wait / static_cast<double>(st.sub_requests) : 0.0;
  char line[192];
  std::snprintf(line, sizeof(line), "S%-6zu %-8s %-8llu %-12s %-9.4f %-9.4f %-12.3f %-10s\n",
                index, common::to_string(server.kind()),
                static_cast<unsigned long long>(st.sub_requests),
                common::format_bytes(st.bytes_total()).c_str(), st.busy_time, st.queue_wait,
                wait_per_sub * 1e3, common::format_bytes(st.bytes_wasted).c_str());
  return line;
}

}  // namespace mha::sim
