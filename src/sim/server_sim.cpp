#include "sim/server_sim.hpp"

#include <algorithm>

namespace mha::sim {

common::Seconds ServerSim::service_time(common::OpType op, common::ByteCount bytes) const {
  if (bytes == 0) return 0.0;
  return device_.service_time(op, bytes) + network_.transfer_time(bytes);
}

common::Seconds ServerSim::submit(common::OpType op, common::ByteCount bytes,
                                  common::Seconds arrival) {
  if (bytes == 0) return arrival;
  const common::Seconds start = std::max(arrival, next_free_);
  // A sub-request that found the device busy pays only the discounted
  // (short-seek) share of the startup cost.
  const bool queued = next_free_ > arrival;
  common::Seconds service = service_time(op, bytes);
  if (queued) {
    service -= device_.startup(op) * (1.0 - device_.queued_startup_factor);
  }
  const common::Seconds completion = start + service;
  next_free_ = completion;

  ++stats_.sub_requests;
  if (op == common::OpType::kRead) {
    stats_.bytes_read += bytes;
  } else {
    stats_.bytes_written += bytes;
  }
  stats_.busy_time += service;
  stats_.queue_wait += start - arrival;
  return completion;
}

}  // namespace mha::sim
