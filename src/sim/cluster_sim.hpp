// A hybrid cluster of HServers and SServers under one virtual clock.
//
// This is the timing substrate the PFS layer plugs into: the PFS maps a file
// request onto per-server sub-requests; the cluster charges each server and
// reports the request's completion (the max across involved servers — "the
// I/O time of a file request depends on the slowest sub-requests", §II-A).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/server_sim.hpp"

namespace mha::sim {

/// Shape of a hybrid cluster.
struct ClusterConfig {
  std::size_t num_hservers = 6;  // the paper's default 6h:2s
  std::size_t num_sservers = 2;
  DeviceProfile hdd = hdd_sata();
  DeviceProfile ssd = ssd_pcie();
  NetworkProfile network = gigabit_ethernet();
};

/// One sub-request targeted at a specific server.
struct SubRequest {
  std::size_t server = 0;
  common::OpType op = common::OpType::kRead;
  common::ByteCount bytes = 0;
  /// Owning tenant job; selects the per-job accounting row on the server.
  common::JobId job = common::kDefaultJob;
};

class ClusterSim {
 public:
  explicit ClusterSim(const ClusterConfig& config);

  std::size_t num_servers() const { return servers_.size(); }
  std::size_t num_hservers() const { return num_hservers_; }
  std::size_t num_sservers() const { return servers_.size() - num_hservers_; }

  /// Servers are ordered HServers first then SServers, matching the paper's
  /// S0..S5 = HServers, S6..S7 = SServers numbering.
  ServerSim& server(std::size_t i) { return servers_[i]; }
  const ServerSim& server(std::size_t i) const { return servers_[i]; }
  bool is_hserver(std::size_t i) const { return i < num_hservers_; }

  /// Submits all sub-requests of one file request at `arrival`; returns the
  /// completion time of the slowest sub-request (== arrival if all empty).
  common::Seconds submit(const std::vector<SubRequest>& subs, common::Seconds arrival);

  /// Charges one sub-request without folding it into any request's
  /// completion — the caller may ignore the returned receipt (fire-and-forget
  /// duplicates) or try_cancel() it on the target server (hedged reads).
  Charge submit_detached(const SubRequest& sub, common::Seconds arrival) {
    return servers_[sub.server].charge(sub.op, sub.bytes, arrival, sub.job);
  }

  /// Completion time `sub` would get if submitted at `arrival`, without
  /// admitting it (the scheduler's straggler look-ahead).
  common::Seconds predict(const SubRequest& sub, common::Seconds arrival) const {
    return servers_[sub.server].predict(sub.op, sub.bytes, arrival);
  }

  /// Seconds of queued work server `i` holds ahead of an arrival at `now`.
  common::Seconds backlog(std::size_t i, common::Seconds now) const {
    return servers_[i].backlog(now);
  }

  /// Attaches one fault model to every server (borrowed; nullptr detaches).
  /// Server `i` reports itself to the hook as index `i`.
  void set_fault_hook(const FaultHook* hook) {
    for (std::size_t i = 0; i < servers_.size(); ++i) servers_[i].set_fault_hook(hook, i);
  }

  /// Aggregate statistics helpers.
  void reset_stats();
  void reset_clocks();
  common::Seconds max_busy_time() const;
  common::ByteCount total_bytes() const;

  /// One formatted row per server: kind, sub-request count, bytes, busy
  /// time, total queue wait and mean wait per sub-request (the straggler
  /// pressure signal).
  std::string stats_table() const;

 private:
  std::vector<ServerSim> servers_;
  std::size_t num_hservers_ = 0;
};

}  // namespace mha::sim
