// Storage-device and network timing models.
//
// The paper's cost model (Table I / Eq. 2) describes a server's service time
// for a sub-request as `alpha + bytes * (t + beta)`, with distinct read/write
// alpha/beta for SSDs.  These profiles are the simulator-side source of those
// parameters: the cluster simulator charges them per sub-request, and the
// MHA Layout Determinator reads the same numbers into its analytic model —
// mirroring the paper, where the model parameters were measured from the
// same testbed the experiments ran on.
#pragma once

#include <string>

#include "common/types.hpp"

namespace mha::sim {

/// Linear service-time model of one storage device.
struct DeviceProfile {
  std::string name;
  /// Per-operation fixed cost in seconds (seek/firmware/software stack).
  common::Seconds startup_read = 0.0;
  common::Seconds startup_write = 0.0;
  /// Per-byte transfer cost in seconds.
  common::Seconds per_byte_read = 0.0;
  common::Seconds per_byte_write = 0.0;
  /// Fraction of the startup cost paid by a sub-request that arrives while
  /// the device is busy (back-to-back service).  Mechanical disks amortise
  /// positioning under load — the elevator scheduler turns queued accesses
  /// into short seeks — so HDDs use a small factor; flash pays its (already
  /// tiny) firmware cost every time.
  double queued_startup_factor = 1.0;

  common::Seconds startup(common::OpType op) const {
    return op == common::OpType::kRead ? startup_read : startup_write;
  }
  common::Seconds per_byte(common::OpType op) const {
    return op == common::OpType::kRead ? per_byte_read : per_byte_write;
  }

  /// Device-only service time of a contiguous access of `bytes`.
  common::Seconds service_time(common::OpType op, common::ByteCount bytes) const {
    return startup(op) + static_cast<double>(bytes) * per_byte(op);
  }

  /// Sustained device bandwidth in bytes/second (ignoring startup).
  double bandwidth(common::OpType op) const { return 1.0 / per_byte(op); }
};

/// Calibrated to the paper's testbed era: a 250 GB SATA-II disk.
/// ~110 MB/s sustained, ~8 ms average positioning cost per random access.
DeviceProfile hdd_sata();

/// Calibrated to the paper's testbed era: a PCI-E X4 100 GB SSD.
/// ~700 MB/s read / ~500 MB/s write, tens-of-microseconds startup; writes
/// cost more than reads (flash program + FTL), as the paper assumes.
DeviceProfile ssd_pcie();

/// Link model shared by all servers ("this model assumes all servers offer
/// the same network bandwidth").
struct NetworkProfile {
  std::string name;
  /// Per-byte wire cost in seconds (the paper's `t`).
  common::Seconds per_byte = 0.0;
  /// Fixed per-message latency in seconds.
  common::Seconds latency = 0.0;

  common::Seconds transfer_time(common::ByteCount bytes) const {
    return latency + static_cast<double>(bytes) * per_byte;
  }
};

/// Gigabit Ethernet as on the paper's SUN Fire cluster: ~117 MiB/s payload
/// bandwidth, ~60 us small-message latency.
NetworkProfile gigabit_ethernet();

/// A zero-cost network, useful for isolating device behaviour in tests.
NetworkProfile null_network();

}  // namespace mha::sim
