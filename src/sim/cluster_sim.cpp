#include "sim/cluster_sim.hpp"

#include <algorithm>
#include <cstdio>

#include "common/units.hpp"

namespace mha::sim {

ClusterSim::ClusterSim(const ClusterConfig& config) : num_hservers_(config.num_hservers) {
  servers_.reserve(config.num_hservers + config.num_sservers);
  for (std::size_t i = 0; i < config.num_hservers; ++i) {
    servers_.emplace_back(common::ServerKind::kHdd, config.hdd, config.network);
  }
  for (std::size_t i = 0; i < config.num_sservers; ++i) {
    servers_.emplace_back(common::ServerKind::kSsd, config.ssd, config.network);
  }
}

common::Seconds ClusterSim::submit(const std::vector<SubRequest>& subs,
                                   common::Seconds arrival) {
  common::Seconds completion = arrival;
  for (const SubRequest& sub : subs) {
    completion = std::max(completion, servers_[sub.server].submit(sub.op, sub.bytes, arrival));
  }
  return completion;
}

void ClusterSim::reset_stats() {
  for (auto& s : servers_) s.reset_stats();
}

void ClusterSim::reset_clocks() {
  for (auto& s : servers_) s.reset_clock();
}

common::Seconds ClusterSim::max_busy_time() const {
  common::Seconds t = 0.0;
  for (const auto& s : servers_) t = std::max(t, s.stats().busy_time);
  return t;
}

common::ByteCount ClusterSim::total_bytes() const {
  common::ByteCount b = 0;
  for (const auto& s : servers_) b += s.stats().bytes_total();
  return b;
}

std::string ClusterSim::stats_table() const {
  std::string out = "server  kind     bytes        busy(s)   wait(s)\n";
  char line[160];
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    const auto& st = servers_[i].stats();
    std::snprintf(line, sizeof(line), "S%-6zu %-8s %-12s %-9.4f %-9.4f\n", i,
                  common::to_string(servers_[i].kind()),
                  common::format_bytes(st.bytes_total()).c_str(), st.busy_time,
                  st.queue_wait);
    out += line;
  }
  return out;
}

}  // namespace mha::sim
