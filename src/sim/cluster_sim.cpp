#include "sim/cluster_sim.hpp"

#include <algorithm>

namespace mha::sim {

ClusterSim::ClusterSim(const ClusterConfig& config) : num_hservers_(config.num_hservers) {
  servers_.reserve(config.num_hservers + config.num_sservers);
  for (std::size_t i = 0; i < config.num_hservers; ++i) {
    servers_.emplace_back(common::ServerKind::kHdd, config.hdd, config.network);
  }
  for (std::size_t i = 0; i < config.num_sservers; ++i) {
    servers_.emplace_back(common::ServerKind::kSsd, config.ssd, config.network);
  }
}

common::Seconds ClusterSim::submit(const std::vector<SubRequest>& subs,
                                   common::Seconds arrival) {
  common::Seconds completion = arrival;
  for (const SubRequest& sub : subs) {
    completion = std::max(completion, servers_[sub.server].submit(sub.op, sub.bytes, arrival, sub.job));
  }
  return completion;
}

void ClusterSim::reset_stats() {
  for (auto& s : servers_) s.reset_stats();
}

void ClusterSim::reset_clocks() {
  for (auto& s : servers_) s.reset_clock();
}

common::Seconds ClusterSim::max_busy_time() const {
  common::Seconds t = 0.0;
  for (const auto& s : servers_) t = std::max(t, s.stats().busy_time);
  return t;
}

common::ByteCount ClusterSim::total_bytes() const {
  common::ByteCount b = 0;
  for (const auto& s : servers_) b += s.stats().bytes_total();
  return b;
}

std::string ClusterSim::stats_table() const {
  std::string out = stats_table_header();
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    out += stats_table_row(i, servers_[i]);
  }
  return out;
}

}  // namespace mha::sim
