// Virtual-time FCFS queue model of one file server.
//
// Each server services sub-requests one at a time in arrival order (a single
// disk/SSD behind a request queue, as in OrangeFS's Trove layer).  A
// sub-request arriving at `arrival` begins at max(arrival, queue drain time)
// and occupies the device for `startup + bytes*(net + per_byte)` — exactly
// the per-server term of the paper's Eq. 2, while queuing across *distinct*
// requests adds the contention the analytic model omits.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "sim/device.hpp"
#include "sim/fault_hook.hpp"

namespace mha::sim {

/// Cumulative per-server counters, reset between measurement windows.
struct ServerStats {
  std::uint64_t sub_requests = 0;
  common::ByteCount bytes_read = 0;
  common::ByteCount bytes_written = 0;
  /// Total device-occupied time (the paper's Fig. 8 "I/O time of each
  /// server").
  common::Seconds busy_time = 0.0;
  /// Total time sub-requests spent waiting behind earlier work.
  common::Seconds queue_wait = 0.0;
  /// Bytes of admitted work whose request was later abandoned (deadline
  /// miss / failed sibling) but could no longer be cancelled — throughput
  /// the server delivered that produced zero goodput.
  common::ByteCount bytes_wasted = 0;

  common::ByteCount bytes_total() const { return bytes_read + bytes_written; }
};

/// One per-job accounting row of a server queue: the share of this server's
/// admitted work owned by a single tenant job.  Rows are created on first
/// touch and reconcile exactly with ServerStats (summing every row's field
/// equals the aggregate), including across try_cancel().
struct JobServerStats {
  std::uint64_t sub_requests = 0;
  common::ByteCount bytes_read = 0;
  common::ByteCount bytes_written = 0;
  common::Seconds busy_time = 0.0;
  common::Seconds queue_wait = 0.0;
  common::ByteCount bytes_wasted = 0;

  common::ByteCount bytes_total() const { return bytes_read + bytes_written; }
};

/// Receipt for one accepted sub-request, enough to undo it.  A hedged read
/// holds the receipts of both copies and cancels the loser's.
struct Charge {
  common::Seconds start = 0.0;
  common::Seconds completion = 0.0;
  common::Seconds service = 0.0;
  common::Seconds wait = 0.0;  ///< start - arrival (time spent queued)
  common::OpType op = common::OpType::kRead;
  common::ByteCount bytes = 0;
  common::JobId job = common::kDefaultJob;  ///< accounting row the charge landed in
  /// Queue drain time before this charge (restored on cancel).
  common::Seconds prev_next_free = 0.0;
  /// Server-local admission sequence number; only the newest charge on a
  /// server is cancellable.
  std::uint64_t seq = 0;
};

class ServerSim {
 public:
  ServerSim(common::ServerKind kind, DeviceProfile device, NetworkProfile network)
      : kind_(kind), device_(std::move(device)), network_(std::move(network)) {}

  common::ServerKind kind() const { return kind_; }
  const DeviceProfile& device() const { return device_; }
  const NetworkProfile& network() const { return network_; }

  /// Admits one sub-request of `bytes` arriving at virtual time `arrival`;
  /// returns its completion time and advances the queue.  `bytes == 0`
  /// completes immediately at `arrival`.  `job` selects the per-job
  /// accounting row the charge lands in (default: the single-tenant job 0).
  common::Seconds submit(common::OpType op, common::ByteCount bytes, common::Seconds arrival,
                         common::JobId job = common::kDefaultJob);

  /// Like submit(), but returns the full receipt so the caller can later
  /// try_cancel() it (hedged duplicates).
  Charge charge(common::OpType op, common::ByteCount bytes, common::Seconds arrival,
                common::JobId job = common::kDefaultJob);

  /// One sub-operation of a batched dispatch (see charge_batch).  `tag` is a
  /// caller cookie (e.g. the index of the owning batch request) passed
  /// through untouched; `completion` is written by charge_batch.
  struct BatchSubOp {
    common::OpType op = common::OpType::kRead;
    common::ByteCount bytes = 0;
    common::Seconds arrival = 0.0;
    common::JobId job = common::kDefaultJob;
    std::uint32_t tag = 0;
    common::Seconds completion = 0.0;  ///< out
  };

  /// Admits a whole batch's sub-operations for this server in ONE dispatch
  /// call, in list order, writing each sub's completion back in place.  The
  /// arithmetic is charge() applied per sub — queue state, aggregate stats
  /// and every per-job row end up bit-identical to per-request dispatches in
  /// the same order — so batching amortizes the client-side call overhead
  /// without perturbing the timing model.
  void charge_batch(std::span<BatchSubOp> subs);

  /// Undoes `c` — rewinds the queue and the stats — provided no later charge
  /// was admitted (LIFO cancellation, the only case a hedger needs).
  /// Returns false (and changes nothing) otherwise or for empty charges.
  bool try_cancel(const Charge& c);

  /// Marks `bytes` of already-admitted `job` work as wasted: the owning
  /// request was abandoned but the charge could not be cancelled, so the
  /// server will serve it for nothing.  Reconciles aggregate and job rows
  /// like every other counter (goodput-vs-throughput accounting).
  void note_wasted(common::JobId job, common::ByteCount bytes);

  /// Completion time a sub-request submitted now would get, without
  /// admitting it (the scheduler's look-ahead; exact under virtual time).
  common::Seconds predict(common::OpType op, common::ByteCount bytes,
                          common::Seconds arrival) const;

  /// Pure service time (no queuing) the server would charge for `bytes`.
  common::Seconds service_time(common::OpType op, common::ByteCount bytes) const;

  /// Time at which the queue drains completely.
  common::Seconds next_free() const { return next_free_; }

  /// Seconds of queued work an arrival at `now` would wait behind.
  common::Seconds backlog(common::Seconds now) const {
    return next_free_ > now ? next_free_ - now : 0.0;
  }

  const ServerStats& stats() const { return stats_; }
  void reset_stats() {
    stats_ = ServerStats{};
    job_stats_.clear();
  }

  /// Per-job accounting rows, indexed by JobId; rows exist for every job id
  /// up to the highest this server has ever been charged for.  Jobs never
  /// seen read as empty rows via job_stats(job).
  const std::vector<JobServerStats>& job_stats() const { return job_stats_; }
  const JobServerStats& job_stats(common::JobId job) const {
    static const JobServerStats kEmpty;
    return job < job_stats_.size() ? job_stats_[job] : kEmpty;
  }

  /// Rewinds the queue to empty at time 0 (stats untouched).
  void reset_clock() { next_free_ = 0.0; }

  /// Attaches a fault model (borrowed; may be nullptr).  `index` is the
  /// identity this server reports to the hook.  When set, charge() and
  /// predict() both push starts past offline windows and inflate service by
  /// the hook's brownout factor, so scheduler look-ahead stays exact under
  /// injected faults.
  void set_fault_hook(const FaultHook* hook, std::size_t index) {
    fault_hook_ = hook;
    fault_index_ = index;
  }
  const FaultHook* fault_hook() const { return fault_hook_; }

 private:
  common::ServerKind kind_;
  DeviceProfile device_;
  NetworkProfile network_;
  common::Seconds next_free_ = 0.0;
  std::uint64_t seq_ = 0;
  ServerStats stats_;
  /// Per-job accounting rows (index == JobId); grown on first touch of a new
  /// job, so the steady-state request path never allocates here.
  std::vector<JobServerStats> job_stats_;
  const FaultHook* fault_hook_ = nullptr;
  std::size_t fault_index_ = 0;
};

/// Shared formatting for the per-server stats tables printed by ClusterSim
/// and HybridPfs: kind, sub-requests, bytes, busy time, queue wait (total
/// and per sub-request — the straggler pressure signal).
std::string stats_table_header();
std::string stats_table_row(std::size_t index, const ServerSim& server);

}  // namespace mha::sim
