// Virtual-time FCFS queue model of one file server.
//
// Each server services sub-requests one at a time in arrival order (a single
// disk/SSD behind a request queue, as in OrangeFS's Trove layer).  A
// sub-request arriving at `arrival` begins at max(arrival, queue drain time)
// and occupies the device for `startup + bytes*(net + per_byte)` — exactly
// the per-server term of the paper's Eq. 2, while queuing across *distinct*
// requests adds the contention the analytic model omits.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "sim/device.hpp"

namespace mha::sim {

/// Cumulative per-server counters, reset between measurement windows.
struct ServerStats {
  std::uint64_t sub_requests = 0;
  common::ByteCount bytes_read = 0;
  common::ByteCount bytes_written = 0;
  /// Total device-occupied time (the paper's Fig. 8 "I/O time of each
  /// server").
  common::Seconds busy_time = 0.0;
  /// Total time sub-requests spent waiting behind earlier work.
  common::Seconds queue_wait = 0.0;

  common::ByteCount bytes_total() const { return bytes_read + bytes_written; }
};

class ServerSim {
 public:
  ServerSim(common::ServerKind kind, DeviceProfile device, NetworkProfile network)
      : kind_(kind), device_(std::move(device)), network_(std::move(network)) {}

  common::ServerKind kind() const { return kind_; }
  const DeviceProfile& device() const { return device_; }
  const NetworkProfile& network() const { return network_; }

  /// Admits one sub-request of `bytes` arriving at virtual time `arrival`;
  /// returns its completion time and advances the queue.  `bytes == 0`
  /// completes immediately at `arrival`.
  common::Seconds submit(common::OpType op, common::ByteCount bytes, common::Seconds arrival);

  /// Pure service time (no queuing) the server would charge for `bytes`.
  common::Seconds service_time(common::OpType op, common::ByteCount bytes) const;

  /// Time at which the queue drains completely.
  common::Seconds next_free() const { return next_free_; }

  const ServerStats& stats() const { return stats_; }
  void reset_stats() { stats_ = ServerStats{}; }

  /// Rewinds the queue to empty at time 0 (stats untouched).
  void reset_clock() { next_free_ = 0.0; }

 private:
  common::ServerKind kind_;
  DeviceProfile device_;
  NetworkProfile network_;
  common::Seconds next_free_ = 0.0;
  ServerStats stats_;
};

}  // namespace mha::sim
