#include "sim/device.hpp"

namespace mha::sim {

DeviceProfile hdd_sata() {
  DeviceProfile p;
  p.name = "hdd-sata-250g";
  // Average positioning cost per sub-request.  PFS server workloads are
  // mostly short seeks within striped files plus write-back caching, not
  // full-stroke random seeks, so this sits well under the ~8 ms random-seek
  // figure.  Calibration anchor: at the 64 KiB default stripe this makes an
  // SServer sub-request ~3.5x faster than an HServer one, the load gap the
  // paper reports for fixed-stripe layouts (§I).
  p.startup_read = 1.5e-3;
  p.startup_write = 2.0e-3;
  // Effective sustained throughput under a PFS server's concurrent striped
  // streams (not the single-stream sequential spec): interleaved requests
  // from many clients keep the head moving, costing roughly half the
  // platter's sequential rate on a 2008-era SATA-II disk that also hosts
  // the OS.
  p.per_byte_read = 1.0 / 42.0e6;
  p.per_byte_write = 1.0 / 38.0e6;
  // Queued accesses on a striped server file are short elevator-ordered
  // seeks, not full repositionings.
  p.queued_startup_factor = 0.05;
  return p;
}

DeviceProfile ssd_pcie() {
  DeviceProfile p;
  p.name = "ssd-pcie-100g";
  // Flash has no mechanical positioning; startup is firmware/software cost.
  p.startup_read = 60.0e-6;
  p.startup_write = 150.0e-6;
  // Asymmetric read/write bandwidth, as the paper's model requires
  // (alpha_sr/beta_sr vs alpha_sw/beta_sw).
  p.per_byte_read = 1.0 / 700.0e6;
  p.per_byte_write = 1.0 / 500.0e6;
  return p;
}

NetworkProfile gigabit_ethernet() {
  NetworkProfile n;
  n.name = "gige";
  n.per_byte = 1.0 / 117.0e6;  // ~117 MB/s TCP payload over 1 GbE
  n.latency = 60.0e-6;
  return n;
}

NetworkProfile null_network() {
  NetworkProfile n;
  n.name = "null";
  return n;
}

}  // namespace mha::sim
