// HARL: the authors' prior heterogeneity-aware region-level layout [8].
//
// The file is divided into fixed, offset-contiguous regions; each region
// gets a cost-model-optimized <h, s> stripe pair.  Two deliberate
// differences from MHA (both are the paper's stated gaps that MHA closes):
// no request grouping/data reordering — a region holds whatever byte ranges
// fall inside it — and the earlier cost model, i.e. no concurrency term and
// the average-request-size search bound rather than MHA's adaptive bounds.
//
// Realisation on our PFS mirrors MHA's machinery: one file per region plus
// an identity-order DRT, so the replayer treats all schemes uniformly.
//
// Note on the cost model: HARL's published model predates the concurrency
// *term rework* but was calibrated on the same live testbed, so it never
// recommended degenerate single-tier layouts.  Reproducing it with c = 1
// against our batch-calibrated parameters would do exactly that, so HARL
// here shares the batch model and keeps its two genuine handicaps —
// offset-contiguous (pattern-mixed) regions and the average-size search
// bound.  The concurrency-term ablation lives in bench_micro_core instead.
#include <algorithm>

#include "common/units.hpp"
#include "core/redirector.hpp"
#include "core/rssd.hpp"
#include "layouts/scheme.hpp"
#include "trace/analysis.hpp"

namespace mha::layouts {

namespace {

class HarlScheme final : public LayoutScheme {
 public:
  explicit HarlScheme(std::size_t region_count) : region_count_(region_count) {}

  std::string name() const override { return "HARL"; }

  common::Result<Deployment> prepare(pfs::HybridPfs& pfs,
                                     const trace::Trace& trace) override {
    const common::ByteCount extent = trace::extent_end(trace.records);
    if (extent == 0) return common::Status::invalid_argument("HARL: empty trace extent");

    // Fixed-size region division, 4 KiB aligned.
    const common::ByteCount raw = (extent + region_count_ - 1) / region_count_;
    const common::ByteCount region_size =
        std::max<common::ByteCount>((raw + 4 * common::kKiB - 1) / (4 * common::kKiB) *
                                        (4 * common::kKiB),
                                    4 * common::kKiB);
    const std::size_t regions = (extent + region_size - 1) / region_size;

    // The original file exists for namespace purposes; all bytes live in the
    // region files.
    auto original = pfs.create_file(trace.file_name);
    if (!original.is_ok()) return original.status();
    pfs.mds().extend(*original, extent);

    // HARL-era bounds; shared batch cost model (see header comment).
    const core::CostModel model(core::CostParams::from_cluster(pfs.config()));
    core::RssdOptions rssd;
    rssd.adaptive_bounds = false;
    const auto concurrency = trace::request_concurrency(trace.records);

    core::Drt drt(trace.file_name);
    for (std::size_t r = 0; r < regions; ++r) {
      const common::Offset start = static_cast<common::Offset>(r) * region_size;
      const common::ByteCount length = std::min<common::ByteCount>(region_size, extent - start);

      // Requests anchored in this region, shifted to region-relative offsets.
      std::vector<core::ModelRequest> requests;
      for (std::size_t i = 0; i < trace.records.size(); ++i) {
        const trace::TraceRecord& rec = trace.records[i];
        if (rec.offset < start || rec.offset >= start + length || rec.size == 0) continue;
        requests.push_back(core::ModelRequest{rec.op, rec.offset - start, rec.size,
                                              concurrency[i], rec.t_start});
      }
      core::StripePair pair{pfs::kDefaultStripe, pfs::kDefaultStripe};
      if (!requests.empty()) {
        auto result = determine_stripes(model, requests, rssd);
        if (!result.is_ok()) return result.status();
        pair = result->best;
      }
      auto layout = pfs::StripeLayout::stripe_pair(pfs.num_hservers(), pfs.num_sservers(),
                                                   pair.h, pair.s);
      if (!layout.is_ok()) return layout.status();
      const std::string region_name = trace.file_name + ".harl.r" + std::to_string(r);
      auto file = pfs.create_file(region_name, std::move(layout).take());
      if (!file.is_ok()) return file.status();
      MHA_RETURN_IF_ERROR(populate_region(pfs, *file, start, length));
      MHA_RETURN_IF_ERROR(drt.insert(core::DrtEntry{start, length, region_name, 0}));
    }

    auto redirector = core::Redirector::create(pfs, std::move(drt));
    if (!redirector.is_ok()) return redirector.status();
    pfs.reset_stats();
    pfs.reset_clocks();

    Deployment d;
    d.file_name = trace.file_name;
    d.interceptor = std::make_unique<core::Redirector>(std::move(redirector).take());
    d.description = std::to_string(regions) + " offset regions of " +
                    common::format_bytes(region_size) + ", per-region stripe pairs";
    return d;
  }

 private:
  /// Fills a region file with the bytes the original holds at [start,
  /// start+length) so integrity checks see reordering-free equivalence.
  static common::Status populate_region(pfs::HybridPfs& pfs, common::FileId file,
                                        common::Offset start, common::ByteCount length) {
    if (!pfs.data_server(0).stores_data()) {
      pfs.mds().extend(file, length);
      return common::Status::ok();
    }
    constexpr common::ByteCount kChunk = 8 * 1024 * 1024;
    std::vector<std::uint8_t> buffer;
    common::Seconds clock = 0.0;
    common::Offset pos = 0;
    while (pos < length) {
      const common::ByteCount piece = std::min<common::ByteCount>(kChunk, length - pos);
      buffer.resize(piece);
      populate_fill(start + pos, buffer.data(), piece);
      auto w = pfs.write(file, pos, buffer.data(), piece, clock);
      if (!w.is_ok()) return w.status();
      clock = w->completion;
      pos += piece;
    }
    return common::Status::ok();
  }

  std::size_t region_count_;
};

}  // namespace

std::unique_ptr<LayoutScheme> make_harl() { return std::make_unique<HarlScheme>(8); }

}  // namespace mha::layouts
