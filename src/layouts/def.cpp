// DEF: the file system's default layout — fixed 64 KiB stripes round-robin
// across every server, blind to both access patterns and server speed.
#include "layouts/scheme.hpp"
#include "trace/analysis.hpp"

namespace mha::layouts {

namespace {

class DefScheme final : public LayoutScheme {
 public:
  std::string name() const override { return "DEF"; }

  common::Result<Deployment> prepare(pfs::HybridPfs& pfs,
                                     const trace::Trace& trace) override {
    auto file = pfs.create_file(trace.file_name);  // uniform kDefaultStripe
    if (!file.is_ok()) return file.status();
    MHA_RETURN_IF_ERROR(populate_file(pfs, *file, trace::extent_end(trace.records)));
    pfs.reset_stats();
    pfs.reset_clocks();
    Deployment d;
    d.file_name = trace.file_name;
    d.description = "fixed 64KiB stripes on all servers";
    return d;
  }
};

}  // namespace

std::unique_ptr<LayoutScheme> make_def() { return std::make_unique<DefScheme>(); }

}  // namespace mha::layouts
