// MHA as a LayoutScheme: wraps the five-phase pipeline so the evaluation
// harness drives it exactly like the baselines.
#include "layouts/scheme.hpp"
#include "trace/analysis.hpp"

namespace mha::layouts {

namespace {

class MhaScheme final : public LayoutScheme {
 public:
  explicit MhaScheme(core::MhaOptions options) : options_(std::move(options)) {}

  std::string name() const override { return "MHA"; }

  common::Result<Deployment> prepare(pfs::HybridPfs& pfs,
                                     const trace::Trace& trace) override {
    // The application's first run produced the original file under the
    // default layout; migration reads from it.
    auto original = pfs.create_file(trace.file_name);
    if (!original.is_ok()) return original.status();
    MHA_RETURN_IF_ERROR(populate_file(pfs, *original, trace::extent_end(trace.records)));

    auto deployment = core::MhaPipeline::deploy(pfs, trace, options_);
    if (!deployment.is_ok()) return deployment.status();
    pfs.reset_stats();
    pfs.reset_clocks();

    Deployment d;
    d.file_name = trace.file_name;
    d.interceptor = std::move(deployment->redirector);
    d.description = std::to_string(deployment->plan.plan.regions.size()) +
                    " reordered regions, per-region stripe pairs";
    return d;
  }

 private:
  core::MhaOptions options_;
};

}  // namespace

std::unique_ptr<LayoutScheme> make_mha(core::MhaOptions options) {
  return std::make_unique<MhaScheme>(std::move(options));
}

}  // namespace mha::layouts
