// The four data-layout schemes compared throughout the paper's evaluation:
//
//   DEF  - OrangeFS default: fixed 64 KiB stripes on every server.
//   AAL  - application-aware layout [10]: stripe sizes derived from the
//          observed access pattern, but identical on HServers and SServers
//          (heterogeneity-blind).
//   HARL - heterogeneity-aware region-level layout [8]: the file is divided
//          into offset-contiguous regions, each given a cost-model-optimized
//          <h, s> stripe pair; no grouping, no data reordering.
//   MHA  - this paper: pattern grouping + data migration into reordered
//          regions, then per-region <h, s> optimization.
//
// A scheme's prepare() makes the traced file exist on the PFS with the
// scheme's layout, pre-populates its bytes, builds any region files plus the
// redirector that routes requests to them, and leaves the PFS with clean
// stats/clocks so the subsequent replay measures only application I/O.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "core/pipeline.hpp"
#include "pfs/file_system.hpp"
#include "trace/record.hpp"

namespace mha::layouts {

/// Everything a replayer needs to run a workload under a prepared scheme.
struct Deployment {
  /// Name of the file the application opens (the traced file).
  std::string file_name;
  /// Interceptor routing requests to region files; null => direct access.
  std::unique_ptr<io::IoInterceptor> interceptor;
  /// Human-readable description of what was built.
  std::string description;
};

class LayoutScheme {
 public:
  virtual ~LayoutScheme() = default;

  virtual std::string name() const = 0;

  /// Builds the scheme's on-PFS state for `trace` (original file must not
  /// already exist).  Implementations must leave stats and clocks reset.
  virtual common::Result<Deployment> prepare(pfs::HybridPfs& pfs,
                                             const trace::Trace& trace) = 0;
};

/// Writes deterministic bytes over [0, length) of `file` on a dedicated
/// off-line timeline (used by every scheme to seed read replays).
common::Status populate_file(pfs::HybridPfs& pfs, common::FileId file,
                             common::ByteCount length,
                             common::ByteCount chunk = 8 * 1024 * 1024);

/// The byte any populated file holds at `offset` (for integrity checks).
inline std::uint8_t populate_byte(common::Offset offset) {
  return static_cast<std::uint8_t>((offset * 1315423911ULL) >> 17);
}

/// Block form of populate_byte: fills out[0..n) with the pattern bytes for
/// offsets [start, start+n).  The multiply is carried incrementally (one add
/// per byte), which the compiler vectorises — use this instead of a per-byte
/// populate_byte loop on any buffer-sized fill.
inline void populate_fill(common::Offset start, std::uint8_t* out, common::ByteCount n) {
  constexpr std::uint64_t kStep = 1315423911ULL;
  std::uint64_t acc = start * kStep;
  for (common::ByteCount i = 0; i < n; ++i, acc += kStep) {
    out[i] = static_cast<std::uint8_t>(acc >> 17);
  }
}

/// Factory helpers.
std::unique_ptr<LayoutScheme> make_def();
std::unique_ptr<LayoutScheme> make_aal();
std::unique_ptr<LayoutScheme> make_harl();
std::unique_ptr<LayoutScheme> make_mha(core::MhaOptions options = {});

/// Extra baseline from the paper's related work (§VI): CARL [36], which
/// places the highest-cost file regions SServer-only.  `ssd_traffic_share`
/// is the fraction of traced traffic the SSD tier may absorb.
std::unique_ptr<LayoutScheme> make_carl(double ssd_traffic_share = 0.5);

/// All four schemes in the paper's presentation order.
std::vector<std::unique_ptr<LayoutScheme>> all_schemes();

}  // namespace mha::layouts
