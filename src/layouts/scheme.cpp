#include "layouts/scheme.hpp"

#include <algorithm>

namespace mha::layouts {

common::Status populate_file(pfs::HybridPfs& pfs, common::FileId file,
                             common::ByteCount length, common::ByteCount chunk) {
  if (chunk == 0) return common::Status::invalid_argument("populate: zero chunk");
  if (pfs.num_servers() > 0 && !pfs.data_server(0).stores_data()) {
    // Timing-only PFS: population would be discarded anyway; just record the
    // logical size (population happens on an off-line timeline, so skipping
    // it does not change any measurement).
    pfs.mds().extend(file, length);
    return common::Status::ok();
  }
  std::vector<std::uint8_t> buffer;
  common::Seconds clock = 0.0;
  common::Offset pos = 0;
  while (pos < length) {
    const common::ByteCount piece = std::min<common::ByteCount>(chunk, length - pos);
    buffer.resize(piece);
    populate_fill(pos, buffer.data(), piece);
    auto w = pfs.write(file, pos, buffer.data(), piece, clock);
    if (!w.is_ok()) return w.status();
    clock = w->completion;
    pos += piece;
  }
  return common::Status::ok();
}

std::vector<std::unique_ptr<LayoutScheme>> all_schemes() {
  std::vector<std::unique_ptr<LayoutScheme>> schemes;
  schemes.push_back(make_def());
  schemes.push_back(make_aal());
  schemes.push_back(make_harl());
  schemes.push_back(make_mha());
  return schemes;
}

}  // namespace mha::layouts
