// CARL: the cost-aware region-level placement of [36] (He et al., CLUSTER
// 2013), reproduced as an extra baseline because the paper's related-work
// section singles it out: "CARL uses both HDD servers and SSD servers as
// persistent storage, and it places file regions with high access costs only
// on SSD servers.  However, this may compromise I/O performance because I/O
// parallelism on all servers may not be fully utilized."
//
// Reproduction: the file is divided into fixed offset regions (as HARL);
// each region's access cost is estimated with the shared cost model under
// the default layout; regions are ranked by cost and the most expensive ones
// — up to an SSD traffic budget — are placed *SServer-only* (<0, s>), the
// rest *HServer-only* (<h, 0>).  No per-region stripe optimization, exactly
// the selective-tier placement the paper contrasts MHA against.
#include <algorithm>
#include <numeric>

#include "common/units.hpp"
#include "core/cost_model.hpp"
#include "core/redirector.hpp"
#include "layouts/scheme.hpp"
#include "trace/analysis.hpp"

namespace mha::layouts {

namespace {

class CarlScheme final : public LayoutScheme {
 public:
  CarlScheme(std::size_t region_count, double ssd_traffic_share)
      : region_count_(region_count), ssd_traffic_share_(ssd_traffic_share) {}

  std::string name() const override { return "CARL"; }

  common::Result<Deployment> prepare(pfs::HybridPfs& pfs,
                                     const trace::Trace& trace) override {
    const common::ByteCount extent = trace::extent_end(trace.records);
    if (extent == 0) return common::Status::invalid_argument("CARL: empty trace extent");
    const common::ByteCount region_size = std::max<common::ByteCount>(
        (extent / region_count_ + 4 * common::kKiB - 1) / (4 * common::kKiB) *
            (4 * common::kKiB),
        4 * common::kKiB);
    const std::size_t regions = (extent + region_size - 1) / region_size;

    auto original = pfs.create_file(trace.file_name);
    if (!original.is_ok()) return original.status();
    pfs.mds().extend(*original, extent);

    // Estimate each region's access cost under the incumbent fixed layout.
    const core::CostModel model(core::CostParams::from_cluster(pfs.config()));
    const auto concurrency = trace::request_concurrency(trace.records);
    std::vector<double> cost(regions, 0.0);
    std::vector<common::ByteCount> traffic(regions, 0);
    for (std::size_t i = 0; i < trace.records.size(); ++i) {
      const trace::TraceRecord& rec = trace.records[i];
      if (rec.size == 0) continue;
      const std::size_t region = std::min<std::size_t>(rec.offset / region_size, regions - 1);
      core::ModelRequest mr{rec.op, rec.offset % region_size, rec.size, concurrency[i],
                            rec.t_start};
      cost[region] +=
          model.request_cost(mr, pfs::kDefaultStripe, pfs::kDefaultStripe);
      traffic[region] += rec.size;
    }

    // Rank by cost; greedily send the hottest regions to the SSD tier until
    // the traffic budget is spent.
    std::vector<std::size_t> order(regions);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return cost[a] > cost[b]; });
    const auto total_traffic =
        std::accumulate(traffic.begin(), traffic.end(), common::ByteCount{0});
    const auto budget =
        static_cast<common::ByteCount>(ssd_traffic_share_ * static_cast<double>(total_traffic));
    std::vector<bool> on_ssd(regions, false);
    common::ByteCount spent = 0;
    for (std::size_t r : order) {
      if (cost[r] <= 0.0) break;
      if (spent + traffic[r] > budget && spent > 0) continue;
      on_ssd[r] = true;
      spent += traffic[r];
    }

    // Realise the placement: SServer-only or HServer-only region files.
    core::Drt drt(trace.file_name);
    std::size_t ssd_regions = 0;
    for (std::size_t r = 0; r < regions; ++r) {
      const common::Offset start = static_cast<common::Offset>(r) * region_size;
      const common::ByteCount length = std::min<common::ByteCount>(region_size, extent - start);
      auto layout = on_ssd[r]
                        ? pfs::StripeLayout::stripe_pair(pfs.num_hservers(), pfs.num_sservers(),
                                                         0, pfs::kDefaultStripe)
                        : pfs::StripeLayout::stripe_pair(pfs.num_hservers(), pfs.num_sservers(),
                                                         pfs::kDefaultStripe, 0);
      if (!layout.is_ok()) return layout.status();
      ssd_regions += on_ssd[r] ? 1 : 0;
      const std::string region_name = trace.file_name + ".carl.r" + std::to_string(r);
      auto file = pfs.create_file(region_name, std::move(layout).take());
      if (!file.is_ok()) return file.status();
      MHA_RETURN_IF_ERROR(populate_file(pfs, *file, 0));  // no-op; sizes via DRT
      pfs.mds().extend(*file, length);
      MHA_RETURN_IF_ERROR(copy_region(pfs, start, length, *file));
      MHA_RETURN_IF_ERROR(drt.insert(core::DrtEntry{start, length, region_name, 0}));
    }

    auto redirector = core::Redirector::create(pfs, std::move(drt));
    if (!redirector.is_ok()) return redirector.status();
    pfs.reset_stats();
    pfs.reset_clocks();

    Deployment d;
    d.file_name = trace.file_name;
    d.interceptor = std::make_unique<core::Redirector>(std::move(redirector).take());
    d.description = std::to_string(ssd_regions) + "/" + std::to_string(regions) +
                    " regions placed SServer-only (cost-ranked)";
    return d;
  }

 private:
  /// Seeds a region file with the original bytes (byte-storing mode only).
  static common::Status copy_region(pfs::HybridPfs& pfs, common::Offset start,
                                    common::ByteCount length, common::FileId file) {
    if (pfs.num_servers() > 0 && !pfs.data_server(0).stores_data()) {
      return common::Status::ok();
    }
    constexpr common::ByteCount kChunk = 8 * 1024 * 1024;
    std::vector<std::uint8_t> buffer;
    common::Seconds clock = 0.0;
    for (common::Offset pos = 0; pos < length; pos += kChunk) {
      const common::ByteCount piece = std::min<common::ByteCount>(kChunk, length - pos);
      buffer.resize(piece);
      populate_fill(start + pos, buffer.data(), piece);
      auto w = pfs.write(file, pos, buffer.data(), piece, clock);
      if (!w.is_ok()) return w.status();
      clock = w->completion;
    }
    return common::Status::ok();
  }

  std::size_t region_count_;
  double ssd_traffic_share_;
};

}  // namespace

std::unique_ptr<LayoutScheme> make_carl(double ssd_traffic_share) {
  return std::make_unique<CarlScheme>(16, ssd_traffic_share);
}

}  // namespace mha::layouts
