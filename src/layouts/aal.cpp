// AAL: the application-aware layout of [10]/[14] — picks the file's stripe
// size from the observed access pattern so a typical request engages all
// servers, but assigns the *same* stripe to HServers and SServers
// (heterogeneity-blind, which is exactly the weakness Figs. 7-13 expose).
#include <algorithm>

#include "common/units.hpp"
#include "layouts/scheme.hpp"
#include "trace/analysis.hpp"

namespace mha::layouts {

namespace {

class AalScheme final : public LayoutScheme {
 public:
  std::string name() const override { return "AAL"; }

  common::Result<Deployment> prepare(pfs::HybridPfs& pfs,
                                     const trace::Trace& trace) override {
    const auto summary = trace::summarize(trace.records);
    // One stripe for all servers: the mean request divided evenly so the
    // whole cluster serves a typical request in parallel; 4 KiB granularity.
    const auto servers = static_cast<common::ByteCount>(pfs.num_servers());
    common::ByteCount stripe =
        static_cast<common::ByteCount>(summary.mean_size) / std::max<common::ByteCount>(servers, 1);
    stripe = std::max<common::ByteCount>((stripe / (4 * common::kKiB)) * (4 * common::kKiB),
                                         4 * common::kKiB);
    auto file = pfs.create_file(trace.file_name,
                                pfs::StripeLayout::uniform(pfs.num_servers(), stripe));
    if (!file.is_ok()) return file.status();
    MHA_RETURN_IF_ERROR(populate_file(pfs, *file, trace::extent_end(trace.records)));
    pfs.reset_stats();
    pfs.reset_clocks();
    Deployment d;
    d.file_name = trace.file_name;
    d.description = "pattern-derived uniform stripe of " + common::format_bytes(stripe);
    return d;
  }
};

}  // namespace

std::unique_ptr<LayoutScheme> make_aal() { return std::make_unique<AalScheme>(); }

}  // namespace mha::layouts
