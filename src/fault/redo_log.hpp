// Client-side write redo log for degraded-mode writes.
//
// A write sub-request bound for an offline server is not an error and must
// not block for the whole outage: the client parks it here (payload bytes
// are already durable in the client-visible content plane, so subsequent
// reads observe the write — read-your-writes) and acknowledges.  When the
// target server comes back, the parked entries are replayed against it so
// the server pays the deferred traffic on its own timeline.  Entries are
// replayed in log order per server.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "fault/injector.hpp"

namespace mha::fault {

struct RedoEntry {
  std::size_t server = 0;
  common::FileId file = common::kInvalidFileId;
  common::ByteCount bytes = 0;
  common::Seconds logged_at = 0.0;
};

class RedoLog {
 public:
  void append(RedoEntry entry) { entries_.push_back(entry); }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  const std::vector<RedoEntry>& pending() const { return entries_; }

  /// Removes and returns every entry whose target server is online at
  /// `now` according to `injector`, preserving log order.
  std::vector<RedoEntry> take_replayable(const FaultInjector& injector,
                                         common::Seconds now);

 private:
  std::vector<RedoEntry> entries_;
};

}  // namespace mha::fault
