#include "fault/injector.hpp"

#include <algorithm>
#include <cstdio>

namespace mha::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTransient: return "transient";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kBrownout: return "brownout";
  }
  return "unknown";
}

void FaultInjector::add(FaultWindow window) {
  if (window.end <= window.start) return;  // empty window: nothing to inject
  windows_.push_back(window);
  // Kept sorted by (server, start) so recovery_time can walk forward.
  std::sort(windows_.begin(), windows_.end(), [](const FaultWindow& a, const FaultWindow& b) {
    if (a.server != b.server) return a.server < b.server;
    return a.start < b.start;
  });
}

void FaultInjector::add_random(const RandomFaultConfig& config) {
  auto draw_count = [&](double expected) {
    // floor(expected) certain windows plus one more with the fractional
    // probability: cheap, mean-correct, and deterministic under the seed.
    std::size_t n = static_cast<std::size_t>(expected);
    if (rng_.next_double() < expected - static_cast<double>(n)) ++n;
    return n;
  };
  auto draw_duration = [&](common::Seconds mean) {
    // Uniform in [0.5, 1.5) * mean: bounded, mean-correct.
    return mean * (0.5 + rng_.next_double());
  };
  for (std::size_t server = 0; server < config.num_servers; ++server) {
    for (std::size_t i = draw_count(config.crashes_per_server); i > 0; --i) {
      FaultWindow w;
      w.server = server;
      w.kind = FaultKind::kCrash;
      w.start = rng_.next_double() * config.horizon;
      w.end = w.start + draw_duration(config.mean_outage);
      add(w);
    }
    for (std::size_t i = draw_count(config.brownouts_per_server); i > 0; --i) {
      FaultWindow w;
      w.server = server;
      w.kind = FaultKind::kBrownout;
      w.start = rng_.next_double() * config.horizon;
      w.end = w.start + draw_duration(config.mean_brownout);
      w.factor = config.brownout_factor;
      add(w);
    }
    if (config.transient_probability > 0.0) {
      FaultWindow w;
      w.server = server;
      w.kind = FaultKind::kTransient;
      w.start = 0.0;
      w.end = config.horizon;
      w.probability = config.transient_probability;
      add(w);
    }
  }
}

bool FaultInjector::offline(std::size_t server, common::Seconds t) const {
  for (const FaultWindow& w : windows_) {
    if (w.server == server && w.kind == FaultKind::kCrash && w.contains(t)) return true;
  }
  return false;
}

common::Seconds FaultInjector::recovery_time(std::size_t server, common::Seconds t) const {
  // Iterate to a fixpoint so chained and nested outage windows all push `t`
  // out, regardless of how they overlap.
  bool moved = true;
  while (moved) {
    moved = false;
    for (const FaultWindow& w : windows_) {
      if (w.server != server || w.kind != FaultKind::kCrash) continue;
      if (w.contains(t)) {
        t = w.end;
        moved = true;
      }
    }
  }
  return t;
}

double FaultInjector::service_factor(std::size_t server, common::Seconds start) const {
  double factor = 1.0;
  for (const FaultWindow& w : windows_) {
    if (w.server == server && w.kind == FaultKind::kBrownout && w.contains(start)) {
      factor = std::max(factor, w.factor);
    }
  }
  return factor;
}

bool FaultInjector::draw_transient(std::size_t server, common::Seconds t) {
  for (const FaultWindow& w : windows_) {
    if (w.server != server || w.kind != FaultKind::kTransient || !w.contains(t)) continue;
    if (rng_.next_double() < w.probability) {
      ++metrics_.transient_errors;
      return true;
    }
  }
  return false;
}

std::string FaultMetrics::table() const {
  char line[220];
  std::string out;
  std::snprintf(line, sizeof(line),
                "faults:   transient=%llu offline-hits=%llu recoveries=%llu\n",
                static_cast<unsigned long long>(transient_errors),
                static_cast<unsigned long long>(offline_hits),
                static_cast<unsigned long long>(recovery_events));
  out += line;
  std::snprintf(line, sizeof(line),
                "retries:  count=%llu backoff=%.3fs budget-exhausted=%llu\n",
                static_cast<unsigned long long>(retries), backoff_seconds,
                static_cast<unsigned long long>(budget_exhausted));
  out += line;
  std::snprintf(line, sizeof(line),
                "degraded: reads=%llu redo-logged=%llu redo-replayed=%llu "
                "redo-bytes=%llu\n",
                static_cast<unsigned long long>(degraded_reads),
                static_cast<unsigned long long>(redo_logged),
                static_cast<unsigned long long>(redo_replayed),
                static_cast<unsigned long long>(redo_bytes));
  out += line;
  return out;
}

}  // namespace mha::fault
