#include "fault/injector.hpp"

#include <algorithm>
#include <cstdio>

namespace mha::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTransient: return "transient";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kBrownout: return "brownout";
    case FaultKind::kBitRot: return "bit-rot";
    case FaultKind::kTornWrite: return "torn-write";
    case FaultKind::kMisdirectedWrite: return "misdirected-write";
  }
  return "unknown";
}

bool is_silent(FaultKind kind) {
  return kind == FaultKind::kBitRot || kind == FaultKind::kTornWrite ||
         kind == FaultKind::kMisdirectedWrite;
}

void FaultInjector::add(FaultWindow window) {
  if (window.end <= window.start) return;  // empty window: nothing to inject
  windows_.push_back(window);
  // Kept sorted by (server, start) so recovery_time can walk forward.
  std::sort(windows_.begin(), windows_.end(), [](const FaultWindow& a, const FaultWindow& b) {
    if (a.server != b.server) return a.server < b.server;
    return a.start < b.start;
  });
}

void FaultInjector::add_random(const RandomFaultConfig& config) {
  auto draw_count = [&](double expected) {
    // floor(expected) certain windows plus one more with the fractional
    // probability: cheap, mean-correct, and deterministic under the seed.
    std::size_t n = static_cast<std::size_t>(expected);
    if (rng_.next_double() < expected - static_cast<double>(n)) ++n;
    return n;
  };
  auto draw_duration = [&](common::Seconds mean) {
    // Uniform in [0.5, 1.5) * mean: bounded, mean-correct.
    return mean * (0.5 + rng_.next_double());
  };
  for (std::size_t server = 0; server < config.num_servers; ++server) {
    for (std::size_t i = draw_count(config.crashes_per_server); i > 0; --i) {
      FaultWindow w;
      w.server = server;
      w.kind = FaultKind::kCrash;
      w.start = rng_.next_double() * config.horizon;
      w.end = w.start + draw_duration(config.mean_outage);
      add(w);
    }
    for (std::size_t i = draw_count(config.brownouts_per_server); i > 0; --i) {
      FaultWindow w;
      w.server = server;
      w.kind = FaultKind::kBrownout;
      w.start = rng_.next_double() * config.horizon;
      w.end = w.start + draw_duration(config.mean_brownout);
      w.factor = config.brownout_factor;
      add(w);
    }
    if (config.transient_probability > 0.0) {
      FaultWindow w;
      w.server = server;
      w.kind = FaultKind::kTransient;
      w.start = 0.0;
      w.end = config.horizon;
      w.probability = config.transient_probability;
      add(w);
    }
    auto add_silent = [&](FaultKind kind, double probability) {
      if (probability <= 0.0) return;
      FaultWindow w;
      w.server = server;
      w.kind = kind;
      w.start = 0.0;
      w.end = config.horizon;
      w.probability = probability;
      add(w);
    };
    add_silent(FaultKind::kBitRot, config.bitrot_probability);
    add_silent(FaultKind::kTornWrite, config.torn_probability);
    add_silent(FaultKind::kMisdirectedWrite, config.misdirect_probability);
  }
}

bool FaultInjector::offline(std::size_t server, common::Seconds t) const {
  for (const FaultWindow& w : windows_) {
    if (w.server == server && w.kind == FaultKind::kCrash && w.contains(t)) return true;
  }
  return false;
}

common::Seconds FaultInjector::recovery_time(std::size_t server, common::Seconds t) const {
  // Iterate to a fixpoint so chained and nested outage windows all push `t`
  // out, regardless of how they overlap.
  bool moved = true;
  while (moved) {
    moved = false;
    for (const FaultWindow& w : windows_) {
      if (w.server != server || w.kind != FaultKind::kCrash) continue;
      if (w.contains(t)) {
        t = w.end;
        moved = true;
      }
    }
  }
  return t;
}

double FaultInjector::service_factor(std::size_t server, common::Seconds start) const {
  double factor = 1.0;
  for (const FaultWindow& w : windows_) {
    if (w.server == server && w.kind == FaultKind::kBrownout && w.contains(start)) {
      factor = std::max(factor, w.factor);
    }
  }
  return factor;
}

sim::WriteFault FaultInjector::draw_write_fault(std::size_t server, common::Seconds t,
                                                common::Offset offset,
                                                common::ByteCount size) {
  sim::WriteFault fault;
  if (size == 0) return fault;
  for (const FaultWindow& w : windows_) {
    if (w.server != server || !is_silent(w.kind) || !w.contains(t)) continue;
    if (rng_.next_double() >= w.probability) continue;
    switch (w.kind) {
      case FaultKind::kBitRot:
        fault.kind = sim::WriteFault::Kind::kBitRot;
        fault.bit_offset = offset + rng_.next_below(size);
        fault.bit_mask = static_cast<std::uint8_t>(1u << rng_.next_below(8));
        ++metrics_.bitrot_injected;
        return fault;
      case FaultKind::kTornWrite:
        fault.kind = sim::WriteFault::Kind::kTornWrite;
        // [0, size): at least the last byte is always lost.
        fault.torn_prefix = rng_.next_below(size);
        ++metrics_.torn_injected;
        return fault;
      case FaultKind::kMisdirectedWrite:
        fault.kind = sim::WriteFault::Kind::kMisdirectedWrite;
        fault.misdirect_to = offset + w.misdirect_delta;
        ++metrics_.misdirected_injected;
        return fault;
      default:
        break;
    }
  }
  return fault;
}

bool FaultInjector::draw_transient(std::size_t server, common::Seconds t) {
  for (const FaultWindow& w : windows_) {
    if (w.server != server || w.kind != FaultKind::kTransient || !w.contains(t)) continue;
    if (rng_.next_double() < w.probability) {
      ++metrics_.transient_errors;
      return true;
    }
  }
  return false;
}

std::string FaultMetrics::table() const {
  char line[220];
  std::string out;
  std::snprintf(line, sizeof(line),
                "faults:   transient=%llu offline-hits=%llu recoveries=%llu\n",
                static_cast<unsigned long long>(transient_errors),
                static_cast<unsigned long long>(offline_hits),
                static_cast<unsigned long long>(recovery_events));
  out += line;
  std::snprintf(line, sizeof(line),
                "retries:  count=%llu backoff=%.3fs budget-exhausted=%llu\n",
                static_cast<unsigned long long>(retries), backoff_seconds,
                static_cast<unsigned long long>(budget_exhausted));
  out += line;
  std::snprintf(line, sizeof(line),
                "degraded: reads=%llu redo-logged=%llu redo-replayed=%llu "
                "redo-bytes=%llu\n",
                static_cast<unsigned long long>(degraded_reads),
                static_cast<unsigned long long>(redo_logged),
                static_cast<unsigned long long>(redo_replayed),
                static_cast<unsigned long long>(redo_bytes));
  out += line;
  std::snprintf(line, sizeof(line),
                "silent:   bit-rot=%llu torn=%llu misdirected=%llu "
                "torn-tails=%llu\n",
                static_cast<unsigned long long>(bitrot_injected),
                static_cast<unsigned long long>(torn_injected),
                static_cast<unsigned long long>(misdirected_injected),
                static_cast<unsigned long long>(torn_tails_truncated));
  out += line;
  std::snprintf(line, sizeof(line),
                "scrub:    passes=%llu detected=%llu repaired=%llu "
                "unrepairable=%llu\n",
                static_cast<unsigned long long>(scrub_passes),
                static_cast<unsigned long long>(corruption_detected),
                static_cast<unsigned long long>(corruption_repaired),
                static_cast<unsigned long long>(corruption_unrepairable));
  out += line;
  return out;
}

}  // namespace mha::fault
