#include "fault/retry.hpp"

#include <algorithm>
#include <cmath>

namespace mha::fault {

common::Seconds backoff_delay(const RetryPolicy& policy, std::size_t attempt,
                              common::Rng& rng) {
  if (attempt == 0) attempt = 1;
  const double exponent = static_cast<double>(attempt - 1);
  common::Seconds delay = policy.base_backoff * std::pow(policy.multiplier, exponent);
  delay = std::min(delay, policy.max_backoff);
  if (policy.jitter > 0.0) {
    const double u = 2.0 * rng.next_double() - 1.0;  // [-1, 1)
    delay *= 1.0 + policy.jitter * u;
  }
  return std::max(delay, 0.0);
}

}  // namespace mha::fault
