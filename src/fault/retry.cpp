#include "fault/retry.hpp"

#include <algorithm>
#include <cmath>

namespace mha::fault {

common::Seconds backoff_delay(const RetryPolicy& policy, std::size_t attempt,
                              common::Rng& rng) {
  if (attempt == 0) attempt = 1;
  // Iterative doubling with an early stop instead of pow(): for large
  // attempt counts multiplier^(attempt-1) overflows to inf — and with
  // base_backoff == 0 the product 0 * inf is NaN, which survives the min()
  // cap and poisons every downstream virtual-time sum.  The running product
  // stops growing the moment it clears the cap, so no intermediate can
  // overflow (for the default multiplier 2.0 this is bit-identical to the
  // pow() form on every in-range attempt).
  common::Seconds delay = policy.base_backoff;
  for (std::size_t i = 1; i < attempt && delay < policy.max_backoff; ++i) {
    delay *= policy.multiplier;
  }
  delay = std::min(delay, policy.max_backoff);
  if (policy.jitter > 0.0) {
    const double u = 2.0 * rng.next_double() - 1.0;  // [-1, 1)
    delay *= 1.0 + policy.jitter * u;
  }
  return std::max(delay, 0.0);
}

}  // namespace mha::fault
