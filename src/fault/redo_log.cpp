#include "fault/redo_log.hpp"

namespace mha::fault {

std::vector<RedoEntry> RedoLog::take_replayable(const FaultInjector& injector,
                                                common::Seconds now) {
  std::vector<RedoEntry> ready;
  std::vector<RedoEntry> keep;
  keep.reserve(entries_.size());
  for (const RedoEntry& e : entries_) {
    if (injector.offline(e.server, now)) {
      keep.push_back(e);
    } else {
      ready.push_back(e);
    }
  }
  entries_ = std::move(keep);
  return ready;
}

}  // namespace mha::fault
