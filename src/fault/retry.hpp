// Client-side retry policy: capped exponential backoff with jitter, plus a
// per-request virtual-time budget.
//
// A transiently-failed sub-request is re-submitted after
//
//   delay(attempt) = min(base * multiplier^(attempt-1), max_backoff)
//                    * (1 + jitter * u),   u uniform in [-1, 1)
//
// — the classic AWS/SRE "capped exponential backoff with jitter" shape.  All
// delays are virtual seconds drawn from a seeded Rng, so retry schedules are
// exactly reproducible.  A request whose retries (or whose wait for an
// offline server) would push it past `arrival + timeout_budget` stops
// retrying and surfaces a common::Status to the caller instead.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace mha::fault {

struct RetryPolicy {
  /// Maximum submissions per sub-request (first try included).
  std::size_t max_attempts = 8;
  common::Seconds base_backoff = 0.5e-3;
  double multiplier = 2.0;
  /// Cap applied before jitter.
  common::Seconds max_backoff = 64e-3;
  /// Jitter fraction in [0, 1); 0 disables jitter.
  double jitter = 0.2;
  /// Per-request virtual-time budget (covers retries and offline waits).
  common::Seconds timeout_budget = 5.0;
};

/// Backoff delay before retry number `attempt` (1-based: the delay after the
/// first failure is attempt 1).  Deterministic given the Rng state.
common::Seconds backoff_delay(const RetryPolicy& policy, std::size_t attempt,
                              common::Rng& rng);

}  // namespace mha::fault
