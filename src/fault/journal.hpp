// Phase-stamped migration journal — crash-safe MHA placement and fold-back.
//
// The five-phase MHA pipeline moves real bytes in its placement phase; a
// crash mid-migration must never strand a half-reordered file.  The journal
// is a write-ahead record, persisted synchronously through mha::kv (the
// paper's "synchronously written to the storage in order to survive power
// failures" discipline, extended from the DRT/RST to the migration itself):
//
//   kPlanned        - plan serialised (regions + layouts + every DRT entry);
//                     nothing touched on the PFS yet
//   kRegionsCreated - region files exist (possibly only some, on a crash)
//   kCopying        - data copy in flight; per-entry progress records say
//                     which DRT entries are fully copied
//   kCopied         - every byte copied; DRT/RST not yet authoritative
//   kCommitted      - the atomic switch point: the journaled DRT/RST are now
//                     the truth and the redirector may serve from regions
//   kFoldback       - OnlineMha is copying region bytes back to the original
//                     file before re-planning (copies are idempotent)
//
// Recovery invariants (enforced by core::recover_migration):
//   * before kCopying  -> roll BACK (original file untouched; drop regions)
//   * kCopying/kCopied -> roll FORWARD (re-copy unfinished entries; entries
//                         are idempotent copies original -> region)
//   * kCommitted       -> migration is complete; rebuild the redirector
//   * kFoldback        -> re-run the fold-back (idempotent region ->
//                         original copies), then drop regions
//
// The journal deliberately speaks only offsets/lengths/names (no core
// types), so it sits beside the injector in the fault library and the core
// layers above translate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "kv/kvstore.hpp"

namespace mha::fault {

enum class JournalPhase : int {
  kNone = 0,
  kPlanned = 1,
  kRegionsCreated = 2,
  kCopying = 3,
  kCopied = 4,
  kCommitted = 5,
  kFoldback = 6,
};

const char* to_string(JournalPhase phase);

/// One region file the migration creates: name plus per-server stripe
/// widths (the RST row).
struct JournalRegion {
  std::string name;
  std::vector<common::ByteCount> widths;

  friend bool operator==(const JournalRegion&, const JournalRegion&) = default;
};

/// One byte move: [o_offset, o_offset+length) of the original file lands at
/// r_offset of r_file (mirrors core::DrtEntry without depending on it).
struct JournalEntry {
  common::Offset o_offset = 0;
  common::ByteCount length = 0;
  std::string r_file;
  common::Offset r_offset = 0;

  friend bool operator==(const JournalEntry&, const JournalEntry&) = default;
};

class MigrationJournal {
 public:
  /// Opens (creating if absent) the journal at `path` and loads any state a
  /// previous run left behind.  Records are fsynced on every mutation.
  common::Status open(const std::string& path);
  common::Status close();
  bool is_open() const { return store_.is_open(); }

  /// True when a previous migration left unfinished state to recover.
  bool active() const {
    return phase_ != JournalPhase::kNone && phase_ != JournalPhase::kCommitted;
  }

  /// Starts a journaled migration: serialises the whole plan, then stamps
  /// kPlanned.  Fails if a previous migration is still unresolved.
  common::Status begin(const std::string& o_file, std::vector<JournalRegion> regions,
                       std::vector<JournalEntry> entries);

  /// Like begin(), but stamps kFoldback (OnlineMha's copy-back pass).
  common::Status begin_foldback(const std::string& o_file,
                                std::vector<JournalRegion> regions,
                                std::vector<JournalEntry> entries);

  common::Status set_phase(JournalPhase phase);
  JournalPhase phase() const { return phase_; }

  /// Marks entry `index` as copied through `bytes` (full length == done).
  common::Status set_copy_progress(std::size_t index, common::ByteCount bytes);
  common::ByteCount copy_progress(std::size_t index) const;

  /// The atomic switch: stamps kCommitted and fsyncs.  After this returns
  /// ok, the journaled DRT/RST are authoritative.
  common::Status commit() { return set_phase(JournalPhase::kCommitted); }

  /// Erases every record (migration fully resolved).
  common::Status clear();

  const std::string& o_file() const { return o_file_; }
  const std::vector<JournalRegion>& regions() const { return regions_; }
  const std::vector<JournalEntry>& entries() const { return entries_; }

  /// What open()'s replay found on disk — lets recovery distinguish "journal
  /// cleanly says phase N" from "phase N, but a torn record was truncated
  /// away" (the crash hit mid-append; the phase on disk is the last durable
  /// one, which is exactly the fold-back the format is designed for).
  const kv::LoadReport& load_report() const { return store_.last_load(); }

  /// Read-only CRC audit of the backing log (the scrubber's KV sweep).
  common::Result<kv::LogVerifyReport> verify_log() const { return store_.verify_log(); }

 private:
  common::Status begin_with_phase(const std::string& o_file,
                                  std::vector<JournalRegion> regions,
                                  std::vector<JournalEntry> entries,
                                  JournalPhase first_phase);
  common::Status persist_plan();
  common::Status load();

  kv::KvStore store_;
  JournalPhase phase_ = JournalPhase::kNone;
  std::string o_file_;
  std::vector<JournalRegion> regions_;
  std::vector<JournalEntry> entries_;
  std::vector<common::ByteCount> progress_;
};

}  // namespace mha::fault
