#include "fault/journal.hpp"

#include <charconv>

namespace mha::fault {

namespace {

// Record encodings are line-free text: numbers in decimal, the (possibly
// arbitrary) file name always last so it needs no escaping.
std::string encode_region(const JournalRegion& region) {
  std::string out;
  for (std::size_t i = 0; i < region.widths.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(region.widths[i]);
  }
  out += "|" + region.name;
  return out;
}

std::string encode_entry(const JournalEntry& entry) {
  return std::to_string(entry.o_offset) + "," + std::to_string(entry.length) + "," +
         std::to_string(entry.r_offset) + "|" + entry.r_file;
}

common::Result<std::vector<std::uint64_t>> parse_numbers(std::string_view text) {
  std::vector<std::uint64_t> out;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  while (p < end) {
    std::uint64_t v = 0;
    auto [next, ec] = std::from_chars(p, end, v);
    if (ec != std::errc{}) {
      return common::Status::corruption("journal: bad number list: " + std::string(text));
    }
    out.push_back(v);
    p = next;
    if (p < end) {
      if (*p != ',') {
        return common::Status::corruption("journal: bad number list: " + std::string(text));
      }
      ++p;
    }
  }
  return out;
}

common::Result<JournalRegion> decode_region(std::string_view text) {
  const std::size_t bar = text.find('|');
  if (bar == std::string_view::npos) {
    return common::Status::corruption("journal: bad region record");
  }
  auto widths = parse_numbers(text.substr(0, bar));
  if (!widths.is_ok()) return widths.status();
  JournalRegion region;
  region.name = std::string(text.substr(bar + 1));
  region.widths.assign(widths->begin(), widths->end());
  return region;
}

common::Result<JournalEntry> decode_entry(std::string_view text) {
  const std::size_t bar = text.find('|');
  if (bar == std::string_view::npos) {
    return common::Status::corruption("journal: bad entry record");
  }
  auto numbers = parse_numbers(text.substr(0, bar));
  if (!numbers.is_ok()) return numbers.status();
  if (numbers->size() != 3) {
    return common::Status::corruption("journal: entry record needs 3 numbers");
  }
  JournalEntry entry;
  entry.o_offset = (*numbers)[0];
  entry.length = (*numbers)[1];
  entry.r_offset = (*numbers)[2];
  entry.r_file = std::string(text.substr(bar + 1));
  return entry;
}

}  // namespace

const char* to_string(JournalPhase phase) {
  switch (phase) {
    case JournalPhase::kNone: return "none";
    case JournalPhase::kPlanned: return "planned";
    case JournalPhase::kRegionsCreated: return "regions-created";
    case JournalPhase::kCopying: return "copying";
    case JournalPhase::kCopied: return "copied";
    case JournalPhase::kCommitted: return "committed";
    case JournalPhase::kFoldback: return "foldback";
  }
  return "unknown";
}

common::Status MigrationJournal::open(const std::string& path) {
  kv::KvOptions options;
  options.sync = kv::SyncMode::kEveryWrite;  // the whole point is crash-safety
  MHA_RETURN_IF_ERROR(store_.open(path, options));
  return load();
}

common::Status MigrationJournal::close() {
  phase_ = JournalPhase::kNone;
  o_file_.clear();
  regions_.clear();
  entries_.clear();
  progress_.clear();
  return store_.close();
}

common::Status MigrationJournal::load() {
  phase_ = JournalPhase::kNone;
  o_file_.clear();
  regions_.clear();
  entries_.clear();
  progress_.clear();
  const auto phase = store_.get("phase");
  if (!phase.has_value()) return common::Status::ok();  // fresh journal
  auto numbers = parse_numbers(*phase);
  if (!numbers.is_ok()) return numbers.status();
  if (numbers->size() != 1 || (*numbers)[0] > static_cast<std::uint64_t>(JournalPhase::kFoldback)) {
    return common::Status::corruption("journal: bad phase record");
  }
  phase_ = static_cast<JournalPhase>((*numbers)[0]);
  if (phase_ == JournalPhase::kNone) return common::Status::ok();

  o_file_ = store_.get("o_file").value_or("");
  if (o_file_.empty()) return common::Status::corruption("journal: missing o_file");
  for (std::size_t i = 0;; ++i) {
    const auto record = store_.get("region/" + std::to_string(i));
    if (!record.has_value()) break;
    auto region = decode_region(*record);
    if (!region.is_ok()) return region.status();
    regions_.push_back(std::move(region).take());
  }
  for (std::size_t i = 0;; ++i) {
    const auto record = store_.get("entry/" + std::to_string(i));
    if (!record.has_value()) break;
    auto entry = decode_entry(*record);
    if (!entry.is_ok()) return entry.status();
    entries_.push_back(std::move(entry).take());
  }
  progress_.assign(entries_.size(), 0);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const auto record = store_.get("progress/" + std::to_string(i));
    if (!record.has_value()) continue;
    auto bytes = parse_numbers(*record);
    if (!bytes.is_ok()) return bytes.status();
    if (bytes->size() == 1) progress_[i] = (*bytes)[0];
  }
  return common::Status::ok();
}

common::Status MigrationJournal::persist_plan() {
  MHA_RETURN_IF_ERROR(store_.put("o_file", o_file_));
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    MHA_RETURN_IF_ERROR(store_.put("region/" + std::to_string(i), encode_region(regions_[i])));
  }
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    MHA_RETURN_IF_ERROR(store_.put("entry/" + std::to_string(i), encode_entry(entries_[i])));
  }
  return common::Status::ok();
}

common::Status MigrationJournal::begin_with_phase(const std::string& o_file,
                                                  std::vector<JournalRegion> regions,
                                                  std::vector<JournalEntry> entries,
                                                  JournalPhase first_phase) {
  if (!is_open()) return common::Status::failed_precondition("journal not open");
  if (active()) {
    return common::Status::failed_precondition(
        "journal holds an unresolved migration (phase " + std::string(to_string(phase_)) +
        "); recover it first");
  }
  MHA_RETURN_IF_ERROR(clear());
  o_file_ = o_file;
  regions_ = std::move(regions);
  entries_ = std::move(entries);
  progress_.assign(entries_.size(), 0);
  MHA_RETURN_IF_ERROR(persist_plan());
  // The phase stamp is written last, directly at the target phase: a crash
  // before this line leaves a journal that loads as kNone (plan records
  // without a phase are inert), and there is never an intermediate stamp a
  // crash could freeze at with the wrong recovery action.
  return set_phase(first_phase);
}

common::Status MigrationJournal::begin(const std::string& o_file,
                                       std::vector<JournalRegion> regions,
                                       std::vector<JournalEntry> entries) {
  return begin_with_phase(o_file, std::move(regions), std::move(entries),
                          JournalPhase::kPlanned);
}

common::Status MigrationJournal::begin_foldback(const std::string& o_file,
                                                std::vector<JournalRegion> regions,
                                                std::vector<JournalEntry> entries) {
  return begin_with_phase(o_file, std::move(regions), std::move(entries),
                          JournalPhase::kFoldback);
}

common::Status MigrationJournal::set_phase(JournalPhase phase) {
  if (!is_open()) return common::Status::failed_precondition("journal not open");
  MHA_RETURN_IF_ERROR(
      store_.put("phase", std::to_string(static_cast<int>(phase))));
  phase_ = phase;
  return common::Status::ok();
}

common::Status MigrationJournal::set_copy_progress(std::size_t index,
                                                   common::ByteCount bytes) {
  if (index >= entries_.size()) {
    return common::Status::out_of_range("journal: no entry " + std::to_string(index));
  }
  MHA_RETURN_IF_ERROR(
      store_.put("progress/" + std::to_string(index), std::to_string(bytes)));
  progress_[index] = bytes;
  return common::Status::ok();
}

common::ByteCount MigrationJournal::copy_progress(std::size_t index) const {
  return index < progress_.size() ? progress_[index] : 0;
}

common::Status MigrationJournal::clear() {
  if (!is_open()) return common::Status::failed_precondition("journal not open");
  // The store is dedicated to the journal, so "clear" is "erase everything".
  std::vector<std::string> keys;
  keys.reserve(store_.size());
  store_.for_each([&](std::string_view key, std::string_view) {
    keys.emplace_back(key);
    return true;
  });
  for (const std::string& key : keys) MHA_RETURN_IF_ERROR(store_.erase(key));
  phase_ = JournalPhase::kNone;
  o_file_.clear();
  regions_.clear();
  entries_.clear();
  progress_.clear();
  return common::Status::ok();
}

}  // namespace mha::fault
