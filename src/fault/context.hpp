// Everything the PFS client needs to serve I/O under injected faults.
//
// A FaultContext bundles the fault source (borrowed FaultInjector), the
// retry policy, the client's seeded jitter Rng, the write redo log, and the
// per-server online/offline state tracking that counts recovery events.
// pfs::HybridPfs borrows one via set_fault_context(); while attached, every
// dispatch runs the degraded-mode path (retry with backoff, degraded reads,
// redo-logged writes) instead of the direct charge path.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/injector.hpp"
#include "fault/redo_log.hpp"
#include "fault/retry.hpp"

namespace mha::fault {

class FaultContext {
 public:
  /// `injector` is borrowed and must outlive the context.
  explicit FaultContext(FaultInjector& injector, RetryPolicy retry = {},
                        std::uint64_t jitter_seed = 0xC11E47ULL)
      : injector_(&injector), retry_(retry), rng_(jitter_seed) {}

  FaultInjector& injector() { return *injector_; }
  const FaultInjector& injector() const { return *injector_; }
  const RetryPolicy& retry() const { return retry_; }
  common::Rng& rng() { return rng_; }
  RedoLog& redo() { return redo_; }
  FaultMetrics& metrics() { return injector_->metrics(); }

  /// Observes `server`'s availability at `now`, counting each
  /// offline -> online transition as a recovery event.
  void note_server_state(std::size_t server, bool offline_now) {
    if (server >= was_offline_.size()) was_offline_.resize(server + 1, false);
    if (was_offline_[server] && !offline_now) ++injector_->metrics().recovery_events;
    was_offline_[server] = offline_now;
  }

 private:
  FaultInjector* injector_;
  RetryPolicy retry_;
  common::Rng rng_;
  RedoLog redo_;
  std::vector<bool> was_offline_;
};

}  // namespace mha::fault
