// Deterministic, virtual-time fault injection for the simulated cluster.
//
// The paper's durability story stops at "DRT/RST are synchronously written
// to the storage in order to survive power failures" (§IV-A); a production
// hybrid PFS must also keep serving when a data server drops requests,
// browns out, or dies mid-migration.  FaultInjector is the single scriptable
// source of such conditions: per-server fault *windows* on the virtual
// timeline —
//
//   kCrash     - the server is offline during [start, end); work cannot
//                begin until the window closes (the sim pushes starts past
//                it, so a crash looks like an extreme straggler to every
//                scheduler's look-ahead),
//   kBrownout  - service time is multiplied by `factor` during the window
//                (thermal throttling, RAID rebuild, noisy neighbour),
//   kTransient - each sub-request admitted inside the window fails with
//                `probability` (dropped request / checksum error); the
//                client retries with backoff.
//
// Everything is seeded through common::Rng and advances only with virtual
// time, so fault benches are exactly reproducible: same seed, same schedule,
// same numbers.  All fault/retry/recovery decisions across the stack land in
// the shared FaultMetrics table, printed stats_table()-style.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/fault_hook.hpp"

namespace mha::fault {

enum class FaultKind : std::uint8_t {
  kTransient = 0,
  kCrash = 1,
  kBrownout = 2,
  // Silent-corruption kinds: the write "succeeds" (normal timing, no error
  // surfaced) but the content plane is damaged.  Caught only by the
  // checksummed extent store / scrubber, never by retry machinery.
  kBitRot = 3,            ///< a stored byte's bits flip after the write
  kTornWrite = 4,         ///< only a prefix of the payload persists
  kMisdirectedWrite = 5,  ///< the payload lands at the wrong physical offset
};

const char* to_string(FaultKind kind);

/// True for the kinds that corrupt data silently instead of affecting
/// timing/availability.
bool is_silent(FaultKind kind);

/// One scripted fault on one server over a half-open virtual-time window.
struct FaultWindow {
  std::size_t server = 0;
  FaultKind kind = FaultKind::kCrash;
  common::Seconds start = 0.0;
  common::Seconds end = 0.0;
  /// kTransient and the silent kinds: per-sub-request probability in [0, 1].
  double probability = 1.0;
  /// kBrownout: service-time multiplier (>= 1).
  double factor = 1.0;
  /// kMisdirectedWrite: the payload lands this many bytes past its target.
  common::Offset misdirect_delta = 64 * 1024;

  bool contains(common::Seconds t) const { return t >= start && t < end; }
};

/// Everything the fault/retry/recovery machinery counted, in one table.
struct FaultMetrics {
  std::uint64_t transient_errors = 0;   ///< injected transient sub-request failures
  std::uint64_t retries = 0;            ///< re-submissions after a transient failure
  common::Seconds backoff_seconds = 0;  ///< virtual seconds spent backing off
  std::uint64_t offline_hits = 0;       ///< sub-requests that found their server offline
  std::uint64_t degraded_reads = 0;     ///< reads re-charged to an SServer replica
  std::uint64_t redo_logged = 0;        ///< writes parked in the client redo log
  std::uint64_t redo_replayed = 0;      ///< redo entries replayed after recovery
  common::ByteCount redo_bytes = 0;     ///< bytes replayed from the redo log
  std::uint64_t budget_exhausted = 0;   ///< requests that surfaced a Status to the caller
  std::uint64_t recovery_events = 0;    ///< offline -> online transitions observed
  // Silent-corruption ledger (tentpole 5): what was injected vs. what the
  // integrity machinery caught and healed.
  std::uint64_t bitrot_injected = 0;        ///< kBitRot faults applied to stores
  std::uint64_t torn_injected = 0;          ///< kTornWrite faults applied
  std::uint64_t misdirected_injected = 0;   ///< kMisdirectedWrite faults applied
  std::uint64_t corruption_detected = 0;    ///< faulty chunks found (reads + scrubs)
  std::uint64_t corruption_repaired = 0;    ///< chunks healed from a second copy
  std::uint64_t corruption_unrepairable = 0;  ///< faulty chunks with no intact source
  std::uint64_t scrub_passes = 0;           ///< full scrub sweeps completed
  std::uint64_t torn_tails_truncated = 0;   ///< torn KV/journal records dropped at load

  /// stats_table()-style report of every fault/retry/recovery decision.
  std::string table() const;
};

/// Shape of a randomly generated (but seed-deterministic) fault schedule.
struct RandomFaultConfig {
  std::size_t num_servers = 8;
  common::Seconds horizon = 10.0;       ///< windows fall in [0, horizon)
  double crashes_per_server = 0.0;      ///< expected crash windows per server
  common::Seconds mean_outage = 0.5;
  double brownouts_per_server = 0.0;    ///< expected brownout windows per server
  common::Seconds mean_brownout = 1.0;
  double brownout_factor = 4.0;
  /// When > 0, one transient window per server spans the whole horizon with
  /// this per-sub-request failure probability.
  double transient_probability = 0.0;
  /// When > 0, one whole-horizon silent window per server per kind with the
  /// given per-sub-write probability (the seeded corruption sweep's knobs).
  double bitrot_probability = 0.0;
  double torn_probability = 0.0;
  double misdirect_probability = 0.0;
};

class FaultInjector : public sim::FaultHook {
 public:
  explicit FaultInjector(std::uint64_t seed = 0x5EEDFA17ULL) : rng_(seed) {}

  /// Adds one scripted window (windows may overlap; crash wins over
  /// brownout where they do).
  void add(FaultWindow window);

  /// Appends a seed-deterministic random schedule (see RandomFaultConfig).
  void add_random(const RandomFaultConfig& config);

  const std::vector<FaultWindow>& windows() const { return windows_; }

  /// True when `server` sits inside a crash window at `t`.
  bool offline(std::size_t server, common::Seconds t) const;

  /// First instant >= `t` outside every crash window of `server`.
  common::Seconds recovery_time(std::size_t server, common::Seconds t) const;

  /// Draws a transient failure for a sub-request admitted on `server` at
  /// `t`; counts it in metrics() when it fires.  Consumes randomness only
  /// when a transient window covers (server, t), keeping schedules
  /// reproducible.
  bool draw_transient(std::size_t server, common::Seconds t);

  /// Draws a silent-corruption decision for a write sub-request of `size`
  /// bytes landing at physical `offset` on `server` at `t`.  The first
  /// silent window (in (server, start) order) covering the instant that
  /// fires wins; kNone when no silent window covers it.  Consumes randomness
  /// only under a covering silent window, so attaching an injector without
  /// silent windows leaves every existing schedule bit-identical.
  sim::WriteFault draw_write_fault(std::size_t server, common::Seconds t,
                                   common::Offset offset, common::ByteCount size);

  // --- sim::FaultHook -----------------------------------------------------
  common::Seconds earliest_start(std::size_t server,
                                 common::Seconds arrival) const override {
    return recovery_time(server, arrival);
  }
  double service_factor(std::size_t server, common::Seconds start) const override;

  FaultMetrics& metrics() { return metrics_; }
  const FaultMetrics& metrics() const { return metrics_; }
  void reset_metrics() { metrics_ = FaultMetrics{}; }

 private:
  std::vector<FaultWindow> windows_;
  common::Rng rng_;
  FaultMetrics metrics_;
};

}  // namespace mha::fault
